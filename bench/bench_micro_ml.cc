/// Microbenchmarks (google-benchmark) for the ML substrate's batched
/// kernels and the models' gradient paths. Every utility query of the
/// valuation pipeline is a full FL training, so these per-step costs are
/// the floor under all Table IV/V wall-clock numbers.
///
/// The *_PerExample / *_Batched pairs compare the historical scalar
/// reference path against the blocked-kernel path at the same batch
/// size; items/s is examples per second, so the batched:per-example
/// ratio is the per-training speedup. CI runs this binary once with a
/// tiny --benchmark_min_time as a smoke test.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common.h"
#include "data/synthetic.h"
#include "ml/cnn.h"
#include "ml/kernel_backend.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "util/logging.h"
#include "util/random.h"

namespace fedshap {
namespace {

constexpr int kBatch = 32;

/// The backend the process dispatched at startup (env override
/// included); the per-backend benchmarks below pin other backends and
/// restore this one so every non-backend benchmark runs dispatched.
KernelBackend g_entry_backend = KernelBackend::kScalar;

std::vector<float> RandomBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> buf(n);
  for (float& v : buf) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return buf;
}

// ---------------------------------------------------------------------------
// Raw kernels

/// Naive dot-product GEMM (the shape of the old per-example loops):
/// reduction inner loop, which the compiler cannot vectorize without
/// -ffast-math. The baseline the blocked kernel is measured against.
void NaiveMatMul(const float* a, size_t m, size_t k, const float* b,
                 size_t n, float* c) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

void BM_MatMulNaive(benchmark::State& state) {
  const size_t m = kBatch, k = 64, n = 64;
  std::vector<float> a = RandomBuffer(m * k, 1), b = RandomBuffer(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    NaiveMatMul(a.data(), m, k, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMulNaive);

void BM_MatMulBlocked(benchmark::State& state) {
  const size_t m = kBatch, k = 64, n = 64;
  std::vector<float> a = RandomBuffer(m * k, 1), b = RandomBuffer(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    MatMul(a.data(), m, k, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMulBlocked);

/// GEMM-bound cases per kernel backend: the same blocked MatMul body
/// pinned to scalar / AVX2 / AVX-512, so the dispatched-vs-scalar
/// speedup is measured directly (the acceptance number of the SIMD
/// dispatch work). Registered dynamically for every backend this
/// machine can execute; names look like "BM_MatMulBackend/avx2/64x256x256".
void MatMulBackendCase(benchmark::State& state, KernelBackend backend,
                       size_t m, size_t k, size_t n) {
  if (!SetKernelBackend(backend).ok()) {
    state.SkipWithError("backend unavailable");
    return;
  }
  std::vector<float> a = RandomBuffer(m * k, 1), b = RandomBuffer(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    MatMul(a.data(), m, k, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  FEDSHAP_CHECK(SetKernelBackend(g_entry_backend).ok());
}

/// The GEMM-bound shapes measured per backend; the speedup report below
/// derives its benchmark names from this same table.
struct GemmShape {
  size_t m, k, n;
};
constexpr GemmShape kGemmShapes[] = {{kBatch, 64, 64}, {64, 256, 256}};

std::string GemmShapeName(const GemmShape& shape) {
  return std::to_string(shape.m) + "x" + std::to_string(shape.k) + "x" +
         std::to_string(shape.n);
}

void RegisterBackendBenchmarks() {
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kAvx512}) {
    if (!KernelBackendAvailable(backend)) continue;
    for (const GemmShape& shape : kGemmShapes) {
      const std::string name =
          "BM_MatMulBackend/" + std::string(KernelBackendName(backend)) +
          "/" + GemmShapeName(shape);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [backend, shape](benchmark::State& state) {
            MatMulBackendCase(state, backend, shape.m, shape.k, shape.n);
          });
    }
  }
}

void BM_AddOuterBatch(benchmark::State& state) {
  const size_t batch = kBatch, rows = 16, cols = 64;
  std::vector<float> a = RandomBuffer(batch * rows, 3);
  std::vector<float> b = RandomBuffer(batch * cols, 4);
  std::vector<float> acc(rows * cols, 0.0f);
  for (auto _ : state) {
    AddOuterBatch(acc.data(), rows, cols, 1.0f, a.data(), b.data(), batch);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * rows * cols);
}
BENCHMARK(BM_AddOuterBatch);

void BM_SgdStepFused(benchmark::State& state) {
  std::vector<float> p = RandomBuffer(4096, 5), g = RandomBuffer(4096, 6);
  for (auto _ : state) {
    SgdStep(p.data(), g.data(), p.size(), 0.01f, 1e-4f);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * p.size());
}
BENCHMARK(BM_SgdStepFused);

// ---------------------------------------------------------------------------
// Model gradient paths: per-example reference vs batched kernels. The
// shapes match the Table IV/V scenarios (8x8 digits, MLP hidden 16,
// 10 classes; CNN with 4 filters).

template <typename ModelT, typename MakeModel, typename MakeData>
void GradientBench(benchmark::State& state, MakeModel make_model,
                   MakeData make_data, bool batched) {
  Rng rng(7);
  Dataset data = make_data(rng);
  ModelT model = make_model(data);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < kBatch; ++i) batch.push_back(i % data.size());
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batched ? model.ComputeGradientBatched(data, batch, grad)
                : model.ComputeGradient(data, batch, grad));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}

Dataset MakeBlobData(Rng& rng) {
  Result<Dataset> data = GenerateBlobs(10, 64, 4.0, 256, rng);
  return std::move(data).value();
}

Dataset MakeDigitData(Rng& rng) {
  DigitsConfig config;
  config.image_size = 8;
  Result<FederatedSource> source = GenerateDigits(config, 256, rng);
  return std::move(source).value().data;
}

Dataset MakeRegressionData(Rng& rng) {
  Result<Dataset> data = Dataset::Create(32, 0);
  Dataset out = std::move(data).value();
  std::vector<float> row(32);
  for (int i = 0; i < 256; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    out.Append(row, static_cast<float>(rng.Gaussian()));
  }
  return out;
}

void BM_MlpGradient_PerExample(benchmark::State& state) {
  GradientBench<Mlp>(
      state, [](const Dataset&) { return Mlp(64, 16, 10); }, MakeBlobData,
      /*batched=*/false);
}
BENCHMARK(BM_MlpGradient_PerExample);

void BM_MlpGradient_Batched(benchmark::State& state) {
  GradientBench<Mlp>(
      state, [](const Dataset&) { return Mlp(64, 16, 10); }, MakeBlobData,
      /*batched=*/true);
}
BENCHMARK(BM_MlpGradient_Batched);

void BM_LogRegGradient_PerExample(benchmark::State& state) {
  GradientBench<LogisticRegression>(
      state, [](const Dataset&) { return LogisticRegression(64, 10); },
      MakeBlobData, /*batched=*/false);
}
BENCHMARK(BM_LogRegGradient_PerExample);

void BM_LogRegGradient_Batched(benchmark::State& state) {
  GradientBench<LogisticRegression>(
      state, [](const Dataset&) { return LogisticRegression(64, 10); },
      MakeBlobData, /*batched=*/true);
}
BENCHMARK(BM_LogRegGradient_Batched);

void BM_CnnGradient_PerExample(benchmark::State& state) {
  GradientBench<Cnn>(
      state, [](const Dataset&) { return Cnn(8, 4, 10); }, MakeDigitData,
      /*batched=*/false);
}
BENCHMARK(BM_CnnGradient_PerExample);

void BM_CnnGradient_Batched(benchmark::State& state) {
  GradientBench<Cnn>(
      state, [](const Dataset&) { return Cnn(8, 4, 10); }, MakeDigitData,
      /*batched=*/true);
}
BENCHMARK(BM_CnnGradient_Batched);

void BM_LinRegGradient_PerExample(benchmark::State& state) {
  GradientBench<LinearRegression>(
      state, [](const Dataset&) { return LinearRegression(32); },
      MakeRegressionData, /*batched=*/false);
}
BENCHMARK(BM_LinRegGradient_PerExample);

void BM_LinRegGradient_Batched(benchmark::State& state) {
  GradientBench<LinearRegression>(
      state, [](const Dataset&) { return LinearRegression(32); },
      MakeRegressionData, /*batched=*/true);
}
BENCHMARK(BM_LinRegGradient_Batched);

// ---------------------------------------------------------------------------
// Fused multi-model scoring (what fuse=on buys a valuation job): scoring
// M trained models on the shared test set as M per-example accuracy
// sweeps vs one stacked X * [W_1^T | ... | W_M^T] GEMM per test chunk —
// the scoring arithmetic of FedAvgUtility::EvaluateBatchFused. Trainings
// are outside both loops; the pair isolates the dispatch overhead that
// fusion amortizes on small models.

constexpr size_t kFusedModels = 16;

std::vector<LogisticRegression> MakeScoringModels(size_t count) {
  std::vector<LogisticRegression> models;
  models.reserve(count);
  for (size_t m = 0; m < count; ++m) {
    LogisticRegression model(64, 10);
    Rng rng(100 + m);
    model.InitializeParameters(rng);
    models.push_back(std::move(model));
  }
  return models;
}

void BM_ScoreModels_PerModel(benchmark::State& state) {
  Rng rng(7);
  const Dataset data = MakeBlobData(rng);
  const std::vector<LogisticRegression> models =
      MakeScoringModels(kFusedModels);
  double sink = 0.0;
  for (auto _ : state) {
    for (const LogisticRegression& model : models) {
      sink += EvaluateAccuracy(model, data);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * models.size() * data.size());
}
BENCHMARK(BM_ScoreModels_PerModel);

void BM_ScoreModels_FusedStacked(benchmark::State& state) {
  Rng rng(7);
  const Dataset data = MakeBlobData(rng);
  const std::vector<LogisticRegression> models =
      MakeScoringModels(kFusedModels);
  const size_t num_features = static_cast<size_t>(data.num_features());
  const size_t classes = static_cast<size_t>(models.front().NumOutputs());
  const size_t stacked_cols = models.size() * classes;
  AlignedFloats stacked_wt(num_features * stacked_cols), xb, logits;
  std::vector<float> stacked_bias(stacked_cols);
  std::vector<size_t> batch;
  std::vector<size_t> correct(models.size());
  double sink = 0.0;
  for (auto _ : state) {
    // Stacking the heads is part of the fused path's cost: the service
    // pays it once per coalition batch, so the benchmark pays it once
    // per iteration.
    for (size_t j = 0; j < models.size(); ++j) {
      const float* bias = nullptr;
      const float* weights = models[j].AffineScorer(&bias);
      for (size_t c = 0; c < classes; ++c) {
        stacked_bias[j * classes + c] = bias[c];
      }
      for (size_t f = 0; f < num_features; ++f) {
        for (size_t c = 0; c < classes; ++c) {
          stacked_wt[f * stacked_cols + j * classes + c] =
              weights[c * num_features + f];
        }
      }
    }
    std::fill(correct.begin(), correct.end(), size_t{0});
    constexpr size_t kChunkRows = 256;
    for (size_t begin = 0; begin < data.size(); begin += kChunkRows) {
      const size_t rows = std::min(kChunkRows, data.size() - begin);
      batch.resize(rows);
      for (size_t i = 0; i < rows; ++i) batch[i] = begin + i;
      GatherRows(data, batch, xb);
      logits.resize(rows * stacked_cols);
      MatMul(xb.data(), rows, num_features, stacked_wt.data(), stacked_cols,
             logits.data());
      AddBiasRows(logits.data(), rows, stacked_cols, stacked_bias.data());
      for (size_t i = 0; i < rows; ++i) {
        const int label = data.ClassLabel(begin + i);
        const float* row = logits.data() + i * stacked_cols;
        for (size_t j = 0; j < models.size(); ++j) {
          const float* scores = row + j * classes;
          size_t best = 0;
          for (size_t c = 1; c < classes; ++c) {
            if (scores[c] > scores[best]) best = c;
          }
          if (static_cast<int>(best) == label) ++correct[j];
        }
      }
    }
    for (size_t count : correct) {
      sink += static_cast<double>(count) / static_cast<double>(data.size());
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * models.size() * data.size());
}
BENCHMARK(BM_ScoreModels_FusedStacked);

// ---------------------------------------------------------------------------
// Whole local trainings (what one FL client does per round): epochs of
// shuffled minibatch SGD end to end, both gradient modes.

void TrainSgdBench(benchmark::State& state, GradientMode mode) {
  Rng rng(11);
  Dataset data = MakeBlobData(rng);
  Mlp prototype(64, 16, 10);
  prototype.InitializeParameters(rng);
  const std::vector<float> init = prototype.GetParameters();
  SgdConfig config;
  config.epochs = 1;
  config.batch_size = kBatch;
  config.gradient_mode = mode;
  for (auto _ : state) {
    Mlp model = prototype;
    benchmark::DoNotOptimize(model.SetParameters(init));
    Rng train_rng(42);
    benchmark::DoNotOptimize(TrainSgd(model, data, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}

void BM_TrainSgdEpoch_PerExample(benchmark::State& state) {
  TrainSgdBench(state, GradientMode::kPerExample);
}
BENCHMARK(BM_TrainSgdEpoch_PerExample);

void BM_TrainSgdEpoch_Batched(benchmark::State& state) {
  TrainSgdBench(state, GradientMode::kBatched);
}
BENCHMARK(BM_TrainSgdEpoch_Batched);

// ---------------------------------------------------------------------------
// Main: standard google-benchmark flags plus --json=<path> (see
// bench/common.h), which archives every benchmark's timing and the
// derived speedup pairs (Batched vs PerExample, each SIMD backend vs
// scalar) as machine-readable records.

/// Console reporter that additionally captures per-benchmark seconds
/// per iteration, keyed by benchmark name.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      seconds_per_iteration_[run.benchmark_name()] =
          run.real_accumulated_time / static_cast<double>(run.iterations);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  const std::map<std::string, double>& seconds_per_iteration() const {
    return seconds_per_iteration_;
  }

 private:
  std::map<std::string, double> seconds_per_iteration_;
};

/// Speedup of `denominator_name` over `baseline_name` (how many times
/// faster), or 0 when either is missing.
double SpeedupOf(const std::map<std::string, double>& seconds,
                 const std::string& baseline_name,
                 const std::string& faster_name) {
  auto base = seconds.find(baseline_name);
  auto fast = seconds.find(faster_name);
  if (base == seconds.end() || fast == seconds.end() ||
      fast->second <= 0.0) {
    return 0.0;
  }
  return base->second / fast->second;
}

int RunMicroMl(int argc, char** argv) {
  // Peel --json off before google-benchmark sees the flags.
  std::string json_path;
  if (const char* env = std::getenv("FEDSHAP_BENCH_JSON")) json_path = env;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());

  g_entry_backend = SelectedKernelBackend();
  std::printf("%s\n", KernelProvenanceString().c_str());
  RegisterBackendBenchmarks();
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  const std::map<std::string, double>& seconds =
      reporter.seconds_per_iteration();
  bench::BenchJson json("micro_ml");
  for (const auto& [name, secs] : seconds) {
    json.Add(name).Metric("seconds_per_iteration", secs);
  }

  // Derived speedups: the numbers the README table and CI artifacts
  // track. Backend cases compare against the scalar backend at the same
  // shape; model cases compare Batched against PerExample.
  std::printf("\nspeedups:\n");
  for (const GemmShape& gemm_shape : kGemmShapes) {
    const std::string shape = GemmShapeName(gemm_shape);
    for (const char* backend : {"avx2", "avx512"}) {
      const std::string base = "BM_MatMulBackend/scalar/" + shape;
      const std::string fast = std::string("BM_MatMulBackend/") + backend +
                               "/" + shape;
      const double speedup = SpeedupOf(seconds, base, fast);
      if (speedup <= 0.0) continue;
      std::printf("  gemm %-11s %-7s vs scalar: %.2fx\n", shape.c_str(),
                  backend, speedup);
      json.Add("gemm_speedup")
          .Label("case", shape)
          .Label("backend", backend)
          .Metric("speedup_vs_scalar", speedup);
    }
  }
  const struct {
    const char* label;
    const char* baseline;
    const char* faster;
  } pairs[] = {
      {"mlp_gradient", "BM_MlpGradient_PerExample", "BM_MlpGradient_Batched"},
      {"logreg_gradient", "BM_LogRegGradient_PerExample",
       "BM_LogRegGradient_Batched"},
      {"cnn_gradient", "BM_CnnGradient_PerExample", "BM_CnnGradient_Batched"},
      {"linreg_gradient", "BM_LinRegGradient_PerExample",
       "BM_LinRegGradient_Batched"},
      {"train_sgd_epoch", "BM_TrainSgdEpoch_PerExample",
       "BM_TrainSgdEpoch_Batched"},
      {"matmul_blocked", "BM_MatMulNaive", "BM_MatMulBlocked"},
      {"fused_scoring", "BM_ScoreModels_PerModel",
       "BM_ScoreModels_FusedStacked"},
  };
  for (const auto& pair : pairs) {
    const double speedup = SpeedupOf(seconds, pair.baseline, pair.faster);
    if (speedup <= 0.0) continue;
    std::printf("  %-24s batched vs reference: %.2fx\n", pair.label,
                speedup);
    json.Add(pair.label).Metric("speedup_batched_vs_reference", speedup);
  }

  Status written = json.WriteTo(json_path);
  if (!written.ok()) {
    std::fprintf(stderr, "bench JSON write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  if (!json_path.empty()) {
    std::printf("\n[json] wrote %s\n", json_path.c_str());
  }
  benchmark::Shutdown();
  return 0;
}

}  // namespace
}  // namespace fedshap

int main(int argc, char** argv) { return fedshap::RunMicroMl(argc, argv); }
