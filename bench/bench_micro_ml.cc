/// Microbenchmarks (google-benchmark) for the ML substrate's batched
/// kernels and the models' gradient paths. Every utility query of the
/// valuation pipeline is a full FL training, so these per-step costs are
/// the floor under all Table IV/V wall-clock numbers.
///
/// The *_PerExample / *_Batched pairs compare the historical scalar
/// reference path against the blocked-kernel path at the same batch
/// size; items/s is examples per second, so the batched:per-example
/// ratio is the per-training speedup. CI runs this binary once with a
/// tiny --benchmark_min_time as a smoke test.

#include <benchmark/benchmark.h>

#include <vector>

#include "data/synthetic.h"
#include "ml/cnn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "ml/sgd.h"
#include "util/random.h"

namespace fedshap {
namespace {

constexpr int kBatch = 32;

std::vector<float> RandomBuffer(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> buf(n);
  for (float& v : buf) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return buf;
}

// ---------------------------------------------------------------------------
// Raw kernels

/// Naive dot-product GEMM (the shape of the old per-example loops):
/// reduction inner loop, which the compiler cannot vectorize without
/// -ffast-math. The baseline the blocked kernel is measured against.
void NaiveMatMul(const float* a, size_t m, size_t k, const float* b,
                 size_t n, float* c) {
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] = acc;
    }
  }
}

void BM_MatMulNaive(benchmark::State& state) {
  const size_t m = kBatch, k = 64, n = 64;
  std::vector<float> a = RandomBuffer(m * k, 1), b = RandomBuffer(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    NaiveMatMul(a.data(), m, k, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMulNaive);

void BM_MatMulBlocked(benchmark::State& state) {
  const size_t m = kBatch, k = 64, n = 64;
  std::vector<float> a = RandomBuffer(m * k, 1), b = RandomBuffer(k * n, 2);
  std::vector<float> c(m * n);
  for (auto _ : state) {
    MatMul(a.data(), m, k, b.data(), n, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
}
BENCHMARK(BM_MatMulBlocked);

void BM_AddOuterBatch(benchmark::State& state) {
  const size_t batch = kBatch, rows = 16, cols = 64;
  std::vector<float> a = RandomBuffer(batch * rows, 3);
  std::vector<float> b = RandomBuffer(batch * cols, 4);
  std::vector<float> acc(rows * cols, 0.0f);
  for (auto _ : state) {
    AddOuterBatch(acc.data(), rows, cols, 1.0f, a.data(), b.data(), batch);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * batch * rows * cols);
}
BENCHMARK(BM_AddOuterBatch);

void BM_SgdStepFused(benchmark::State& state) {
  std::vector<float> p = RandomBuffer(4096, 5), g = RandomBuffer(4096, 6);
  for (auto _ : state) {
    SgdStep(p.data(), g.data(), p.size(), 0.01f, 1e-4f);
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * p.size());
}
BENCHMARK(BM_SgdStepFused);

// ---------------------------------------------------------------------------
// Model gradient paths: per-example reference vs batched kernels. The
// shapes match the Table IV/V scenarios (8x8 digits, MLP hidden 16,
// 10 classes; CNN with 4 filters).

template <typename ModelT, typename MakeModel, typename MakeData>
void GradientBench(benchmark::State& state, MakeModel make_model,
                   MakeData make_data, bool batched) {
  Rng rng(7);
  Dataset data = make_data(rng);
  ModelT model = make_model(data);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < kBatch; ++i) batch.push_back(i % data.size());
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        batched ? model.ComputeGradientBatched(data, batch, grad)
                : model.ComputeGradient(data, batch, grad));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}

Dataset MakeBlobData(Rng& rng) {
  Result<Dataset> data = GenerateBlobs(10, 64, 4.0, 256, rng);
  return std::move(data).value();
}

Dataset MakeDigitData(Rng& rng) {
  DigitsConfig config;
  config.image_size = 8;
  Result<FederatedSource> source = GenerateDigits(config, 256, rng);
  return std::move(source).value().data;
}

Dataset MakeRegressionData(Rng& rng) {
  Result<Dataset> data = Dataset::Create(32, 0);
  Dataset out = std::move(data).value();
  std::vector<float> row(32);
  for (int i = 0; i < 256; ++i) {
    for (float& v : row) v = static_cast<float>(rng.Gaussian());
    out.Append(row, static_cast<float>(rng.Gaussian()));
  }
  return out;
}

void BM_MlpGradient_PerExample(benchmark::State& state) {
  GradientBench<Mlp>(
      state, [](const Dataset&) { return Mlp(64, 16, 10); }, MakeBlobData,
      /*batched=*/false);
}
BENCHMARK(BM_MlpGradient_PerExample);

void BM_MlpGradient_Batched(benchmark::State& state) {
  GradientBench<Mlp>(
      state, [](const Dataset&) { return Mlp(64, 16, 10); }, MakeBlobData,
      /*batched=*/true);
}
BENCHMARK(BM_MlpGradient_Batched);

void BM_LogRegGradient_PerExample(benchmark::State& state) {
  GradientBench<LogisticRegression>(
      state, [](const Dataset&) { return LogisticRegression(64, 10); },
      MakeBlobData, /*batched=*/false);
}
BENCHMARK(BM_LogRegGradient_PerExample);

void BM_LogRegGradient_Batched(benchmark::State& state) {
  GradientBench<LogisticRegression>(
      state, [](const Dataset&) { return LogisticRegression(64, 10); },
      MakeBlobData, /*batched=*/true);
}
BENCHMARK(BM_LogRegGradient_Batched);

void BM_CnnGradient_PerExample(benchmark::State& state) {
  GradientBench<Cnn>(
      state, [](const Dataset&) { return Cnn(8, 4, 10); }, MakeDigitData,
      /*batched=*/false);
}
BENCHMARK(BM_CnnGradient_PerExample);

void BM_CnnGradient_Batched(benchmark::State& state) {
  GradientBench<Cnn>(
      state, [](const Dataset&) { return Cnn(8, 4, 10); }, MakeDigitData,
      /*batched=*/true);
}
BENCHMARK(BM_CnnGradient_Batched);

void BM_LinRegGradient_PerExample(benchmark::State& state) {
  GradientBench<LinearRegression>(
      state, [](const Dataset&) { return LinearRegression(32); },
      MakeRegressionData, /*batched=*/false);
}
BENCHMARK(BM_LinRegGradient_PerExample);

void BM_LinRegGradient_Batched(benchmark::State& state) {
  GradientBench<LinearRegression>(
      state, [](const Dataset&) { return LinearRegression(32); },
      MakeRegressionData, /*batched=*/true);
}
BENCHMARK(BM_LinRegGradient_Batched);

// ---------------------------------------------------------------------------
// Whole local trainings (what one FL client does per round): epochs of
// shuffled minibatch SGD end to end, both gradient modes.

void TrainSgdBench(benchmark::State& state, GradientMode mode) {
  Rng rng(11);
  Dataset data = MakeBlobData(rng);
  Mlp prototype(64, 16, 10);
  prototype.InitializeParameters(rng);
  const std::vector<float> init = prototype.GetParameters();
  SgdConfig config;
  config.epochs = 1;
  config.batch_size = kBatch;
  config.gradient_mode = mode;
  for (auto _ : state) {
    Mlp model = prototype;
    benchmark::DoNotOptimize(model.SetParameters(init));
    Rng train_rng(42);
    benchmark::DoNotOptimize(TrainSgd(model, data, config, train_rng));
  }
  state.SetItemsProcessed(state.iterations() * data.size());
}

void BM_TrainSgdEpoch_PerExample(benchmark::State& state) {
  TrainSgdBench(state, GradientMode::kPerExample);
}
BENCHMARK(BM_TrainSgdEpoch_PerExample);

void BM_TrainSgdEpoch_Batched(benchmark::State& state) {
  TrainSgdBench(state, GradientMode::kBatched);
}
BENCHMARK(BM_TrainSgdEpoch_Batched);

}  // namespace
}  // namespace fedshap

BENCHMARK_MAIN();
