/// Microbenchmarks (google-benchmark) for the hot substrate paths: coalition
/// ops, subset enumeration, utility-cache lookups, model gradient steps and
/// FedAvg aggregation. These are the per-evaluation costs that the charged
/// time model sits on top of.

#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "fl/server.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/cnn.h"
#include "ml/mlp.h"
#include "util/combinatorics.h"
#include "util/coalition.h"

namespace fedshap {
namespace {

void BM_CoalitionCountAndHash(benchmark::State& state) {
  Coalition c = Coalition::Full(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Count());
    benchmark::DoNotOptimize(c.Hash());
  }
}
BENCHMARK(BM_CoalitionCountAndHash)->Arg(10)->Arg(100);

void BM_SubsetEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    int count = 0;
    ForEachSubsetOfSize(n, n / 2, [&](const Coalition& c) {
      benchmark::DoNotOptimize(c);
      ++count;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(10)->Arg(16);

void BM_UtilityCacheHit(benchmark::State& state) {
  LinearRegressionUtility::Params params;
  params.num_clients = 10;
  LinearRegressionUtility fn(params);
  UtilityCache cache(&fn);
  Coalition c = Coalition::Of({1, 3, 5});
  benchmark::DoNotOptimize(cache.Get(c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(c));
  }
}
BENCHMARK(BM_UtilityCacheHit);

void BM_MlpGradientStep(benchmark::State& state) {
  Rng rng(1);
  Result<Dataset> data = GenerateBlobs(10, 64, 4.0, 64, rng);
  Mlp model(64, 16, 10);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < 16; ++i) batch.push_back(i);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ComputeGradient(*data, batch, grad));
  }
}
BENCHMARK(BM_MlpGradientStep);

void BM_CnnGradientStep(benchmark::State& state) {
  DigitsConfig config;
  config.image_size = 8;
  Rng rng(2);
  Result<FederatedSource> source = GenerateDigits(config, 64, rng);
  Cnn model(8, 4, 10);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < 16; ++i) batch.push_back(i);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ComputeGradient(source->data, batch, grad));
  }
}
BENCHMARK(BM_CnnGradientStep);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::vector<std::vector<float>> params(
      clients, std::vector<float>(1200, 0.5f));
  std::vector<double> weights(clients, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FedAvgAggregate(params, weights));
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(100);

}  // namespace
}  // namespace fedshap

BENCHMARK_MAIN();
