/// Microbenchmarks (google-benchmark) for the hot substrate paths: coalition
/// ops, subset enumeration, utility-cache lookups, model gradient steps,
/// FedAvg aggregation, and the thread-scaling of batched coalition
/// evaluation. These are the per-evaluation costs that the charged time
/// model sits on top of.

#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>

#include "core/ipss.h"
#include "data/synthetic.h"
#include "fl/server.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/cnn.h"
#include "ml/mlp.h"
#include "util/combinatorics.h"
#include "util/coalition.h"
#include "util/thread_pool.h"

namespace fedshap {
namespace {

void BM_CoalitionCountAndHash(benchmark::State& state) {
  Coalition c = Coalition::Full(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.Count());
    benchmark::DoNotOptimize(c.Hash());
  }
}
BENCHMARK(BM_CoalitionCountAndHash)->Arg(10)->Arg(100);

void BM_SubsetEnumeration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    int count = 0;
    ForEachSubsetOfSize(n, n / 2, [&](const Coalition& c) {
      benchmark::DoNotOptimize(c);
      ++count;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_SubsetEnumeration)->Arg(10)->Arg(16);

void BM_UtilityCacheHit(benchmark::State& state) {
  LinearRegressionUtility::Params params;
  params.num_clients = 10;
  LinearRegressionUtility fn(params);
  UtilityCache cache(&fn);
  Coalition c = Coalition::Of({1, 3, 5});
  benchmark::DoNotOptimize(cache.Get(c));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get(c));
  }
}
BENCHMARK(BM_UtilityCacheHit);

void BM_MlpGradientStep(benchmark::State& state) {
  Rng rng(1);
  Result<Dataset> data = GenerateBlobs(10, 64, 4.0, 64, rng);
  Mlp model(64, 16, 10);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < 16; ++i) batch.push_back(i);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ComputeGradient(*data, batch, grad));
  }
}
BENCHMARK(BM_MlpGradientStep);

void BM_CnnGradientStep(benchmark::State& state) {
  DigitsConfig config;
  config.image_size = 8;
  Rng rng(2);
  Result<FederatedSource> source = GenerateDigits(config, 64, rng);
  Cnn model(8, 4, 10);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < 16; ++i) batch.push_back(i);
  std::vector<float> grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.ComputeGradient(source->data, batch, grad));
  }
}
BENCHMARK(BM_CnnGradientStep);

/// A latency-bound utility: each evaluation blocks for a fixed interval,
/// like an FL round waiting on remote client updates (the dominant cost of
/// real cross-device FL). Batched evaluation overlaps these waits, so the
/// thread-scaling of the parallel pathway is visible on any host,
/// including single-core CI runners.
class LatencyBoundUtility : public UtilityFunction {
 public:
  LatencyBoundUtility(int n, int micros) : n_(n), micros_(micros) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros_));
    return static_cast<double>(coalition.Count());
  }

 private:
  int n_;
  int micros_;
};

/// Raw cache fan-out: one batch of 66 coalitions, cold cache per
/// iteration. Arg = worker threads; speedup at 4 threads vs 1 should
/// approach 4x (the work is pure wait).
void BM_PrefetchThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  LatencyBoundUtility fn(12, 300);
  ThreadPool pool(threads);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(12, 2, [&](const Coalition& c) { batch.push_back(c); });
  for (auto _ : state) {
    UtilityCache cache(&fn);
    benchmark::DoNotOptimize(
        cache.Prefetch(batch, threads > 1 ? &pool : nullptr));
  }
}
BENCHMARK(BM_PrefetchThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// End-to-end IPSS at gamma=160 on n=16: the exhaustive phase plus the
/// balanced (k*+1)-stratum sample all flow through the session's batched
/// pathway. Estimates are identical across thread counts.
void BM_IpssThreadScaling(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  LatencyBoundUtility fn(16, 200);
  ThreadPool pool(threads);
  IpssConfig config;
  config.total_rounds = 160;
  for (auto _ : state) {
    UtilityCache cache(&fn);
    UtilitySession session(&cache, threads > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(IpssShapley(session, config));
  }
}
BENCHMARK(BM_IpssThreadScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_FedAvgAggregate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  std::vector<std::vector<float>> params(
      clients, std::vector<float>(1200, 0.5f));
  std::vector<double> weights(clients, 100.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FedAvgAggregate(params, weights));
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(10)->Arg(100);

}  // namespace
}  // namespace fedshap

BENCHMARK_MAIN();
