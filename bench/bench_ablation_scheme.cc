/// Ablation: the computation-scheme choice of Sec. III-B in isolation.
///
/// Runs Alg. 1 under the exact conditions of Theorem 2 — the FL
/// linear-regression utility with correlated per-client noise, pairs always
/// evaluated, every client covered in every stratum — and reports the
/// across-run variance of MC-SV vs CC-SV per noise level. This isolates the
/// scheme choice from the pruning contribution of IPSS.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

namespace {

double TotalVariance(const std::vector<std::vector<double>>& samples,
                     int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double mean = 0.0;
    for (const auto& v : samples) mean += v[i];
    mean /= samples.size();
    double var = 0.0;
    for (const auto& v : samples) var += (v[i] - mean) * (v[i] - mean);
    total += var / samples.size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int runs = 120;
  PrintRunHeader(("Ablation: MC-SV vs CC-SV variance under Thm. 2's "
                  "linear-regression model (" +
                  std::to_string(runs) + " runs)")
                     .c_str(),
                 options, /*runner_backed=*/false);

  ConsoleTable table({"noise sigma", "Var[MC-SV]", "Var[CC-SV]",
                      "CC/MC ratio"});
  for (double noise_scale : {0.0005, 0.001, 0.002, 0.004}) {
    LinearRegressionUtility::Params params;
    params.num_clients = 6;
    params.samples_per_client = 30;
    params.feature_dim = 3;
    params.noise_scale = noise_scale;
    LinearRegressionUtility utility(params);
    const int n = params.num_clients;

    std::vector<std::vector<double>> mc_samples, cc_samples;
    for (int run = 0; run < runs; ++run) {
      utility.Reseed(options.seed + run);
      UtilityCache cache(&utility);
      StratifiedConfig config;
      config.rounds_per_stratum = {120, 10, 8, 8, 10, 1};
      config.pair_policy = PairPolicy::kEvaluateOnDemand;
      config.seed = options.seed + 13 * run;
      config.scheme = SvScheme::kMarginal;
      UtilitySession mc_session(&cache);
      Result<ValuationResult> mc =
          StratifiedSamplingShapley(mc_session, config);
      if (!mc.ok()) return 1;
      mc_samples.push_back(mc->values);
      config.scheme = SvScheme::kComplementary;
      UtilitySession cc_session(&cache);
      Result<ValuationResult> cc =
          StratifiedSamplingShapley(cc_session, config);
      if (!cc.ok()) return 1;
      cc_samples.push_back(cc->values);
    }
    const double mc_var = TotalVariance(mc_samples, n);
    const double cc_var = TotalVariance(cc_samples, n);
    table.AddRow({FormatDouble(noise_scale, 4), FormatDouble(mc_var, 6),
                  FormatDouble(cc_var, 6),
                  FormatDouble(mc_var > 0 ? cc_var / mc_var : 0.0, 2)});
  }
  table.Print(std::cout);
  std::printf("\nTheorem 2 predicts ratio > 1 (MC strictly lower).\n");
  return 0;
}
