/// Reproduces Table V: SV-based data valuation on the Adult-style tabular
/// workload across n in {3, 6, 10} clients with MLP and XGB (GBDT) models.
/// Gradient-based baselines (DIG-FL, GTG-Shapley, OR, lambda-MR) are not
/// applicable to the tree model and render as "\", as in the paper.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader(
      "Table V: Adult-like tabular, by-occupation partition "
      "(time = charged train+eval cost)",
      options);

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kXgb}) {
    for (int n : {3, 6, 10}) {
      ScenarioRunner runner(MakeAdultScenario(n, kind, options),
                            options);
      const std::vector<double>& exact = runner.GroundTruth();
      const int gamma = PaperGamma(n);

      ConsoleTable table({"algorithm", "time", "trainings", "error(l2)"});
      for (Algo algo : AllAlgos()) {
        const bool gradient_based =
            algo == Algo::kDigFl || algo == Algo::kGtgShapley ||
            algo == Algo::kOr || algo == Algo::kLambdaMr;
        if (kind == ModelKind::kXgb && gradient_based) {
          AlgoRun not_applicable;
          not_applicable.applicable = false;
          table.AddRow({AlgoName(algo), TimeCell(not_applicable),
                        "\\", ErrorCell(not_applicable, exact)});
          continue;
        }
        Result<AlgoRun> run = runner.Run(algo, gamma, options.seed + n);
        if (!run.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                       run.status().ToString().c_str());
          return 1;
        }
        table.AddRow({AlgoName(algo), TimeCell(*run),
                      std::to_string(run->result.num_trainings),
                      ErrorCell(*run, exact)});
      }
      std::printf("--- %s | gamma=%d | tau=%s/model ---\n",
                  runner.description().c_str(), gamma,
                  FormatSeconds(runner.MeanTrainingCost()).c_str());
      table.Print(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}
