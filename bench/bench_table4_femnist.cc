/// Reproduces Table IV: SV-based data valuation on the FEMNIST-style
/// workload across n in {3, 6, 10} clients with MLP and CNN FL models.
/// For every algorithm the harness reports the charged time (see
/// EXPERIMENTS.md "Cost accounting"), the number of FL trainings, and the
/// relative l2 approximation error against the exact MC-SV ground truth.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader(
      "Table IV: FEMNIST-like digits, by-writer partition "
      "(time = charged train+eval cost)",
      options);

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    for (int n : {3, 6, 10}) {
      ScenarioRunner runner(MakeFemnistScenario(n, kind, options),
                            options);
      const std::vector<double>& exact = runner.GroundTruth();
      const int gamma = PaperGamma(n);

      ConsoleTable table({"algorithm", "time", "trainings", "error(l2)"});
      for (Algo algo : AllAlgos()) {
        Result<AlgoRun> run = runner.Run(algo, gamma, options.seed + n);
        if (!run.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                       run.status().ToString().c_str());
          return 1;
        }
        table.AddRow({AlgoName(algo), TimeCell(*run),
                      std::to_string(run->result.num_trainings),
                      ErrorCell(*run, exact)});
      }
      std::printf("--- %s | gamma=%d | tau=%s/model ---\n",
                  runner.description().c_str(), gamma,
                  FormatSeconds(runner.MeanTrainingCost()).c_str());
      table.Print(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}
