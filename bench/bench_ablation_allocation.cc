/// Ablation: stratum allocation inside the stratified framework.
///
/// Alg. 1 leaves the per-stratum budgets m_k free. This bench compares the
/// uniform round-robin default against pilot-based Neyman allocation at
/// matched total budgets on the noisy FL linear-regression utility, where
/// strata genuinely differ in marginal-contribution variance.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int repeats = 30;
  PrintRunHeader(("Ablation: uniform vs Neyman stratum allocation "
                  "(linear-regression utility, " +
                  std::to_string(repeats) + " runs)")
                     .c_str(),
                 options, /*runner_backed=*/false);

  LinearRegressionUtility::Params params;
  params.num_clients = 8;
  params.samples_per_client = 30;
  params.feature_dim = 3;
  params.noise_scale = 0.004;
  const int n = params.num_clients;

  // Ground truth from the noise-free mean utility.
  LinearRegressionUtility mean_utility(params);
  std::vector<double> exact(n, 0.0);
  {
    LinearRegressionUtility::Params clean = params;
    clean.noise_scale = 0.0;
    LinearRegressionUtility clean_utility(clean);
    UtilityCache cache(&clean_utility);
    UtilitySession session(&cache);
    Result<ValuationResult> sv = ExactShapleyMc(session);
    if (!sv.ok()) return 1;
    exact = sv->values;
  }

  ConsoleTable table({"budget", "uniform err", "Neyman err", "ratio"});
  for (int budget : {120, 240, 480}) {
    double uniform_sum = 0.0, neyman_sum = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      LinearRegressionUtility utility(params);
      utility.Reseed(options.seed + 71 * rep);
      UtilityCache cache(&utility);

      StratifiedConfig uniform;
      uniform.total_rounds = budget;
      uniform.pair_policy = PairPolicy::kEvaluateOnDemand;
      uniform.seed = options.seed + rep;
      UtilitySession uniform_session(&cache);
      Result<ValuationResult> u =
          StratifiedSamplingShapley(uniform_session, uniform);
      if (!u.ok()) return 1;
      uniform_sum += RelativeL2Error(exact, u->values);

      UtilitySession alloc_session(&cache);
      Result<std::vector<int>> allocation =
          NeymanAllocation(alloc_session, budget, 2,
                           options.seed + 31 * rep);
      if (!allocation.ok()) return 1;
      StratifiedConfig neyman;
      neyman.rounds_per_stratum = *allocation;
      neyman.pair_policy = PairPolicy::kEvaluateOnDemand;
      neyman.seed = options.seed + rep;
      UtilitySession neyman_session(&cache);
      Result<ValuationResult> v =
          StratifiedSamplingShapley(neyman_session, neyman);
      if (!v.ok()) return 1;
      neyman_sum += RelativeL2Error(exact, v->values);
    }
    const double uniform_err = uniform_sum / repeats;
    const double neyman_err = neyman_sum / repeats;
    table.AddRow({std::to_string(budget), FormatDouble(uniform_err, 4),
                  FormatDouble(neyman_err, 4),
                  FormatDouble(uniform_err / std::max(neyman_err, 1e-12),
                               2) +
                      "x"});
  }
  table.Print(std::cout);
  std::printf("\n(ratio > 1: Neyman allocation helps on this utility)\n");
  return 0;
}
