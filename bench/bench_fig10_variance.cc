/// Reproduces Fig. 10: the across-run variance of the unified stratified
/// sampling framework (Alg. 1) under the MC-SV vs the CC-SV computation
/// scheme, as the budget gamma grows, for n in {3, 6, 10} on FEMNIST-style
/// data with MLP and CNN models. The paper's finding (and Thm. 2): MC-SV
/// has lower variance; both schemes' variance collapses once gamma covers
/// nearly all coalitions.
///
/// A second section compares fixed vs adaptive (Neyman) stratum
/// allocation of the shared-pool estimator (n >= 6, where allocation has
/// room to matter) and emits trainings-to-target-error plus the
/// across-run variance into BenchJson (--json);
/// tools/check_bench_regression.py tracks both as lower-is-better.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

namespace {

double TotalVariance(const std::vector<std::vector<double>>& samples,
                     int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double mean = 0.0;
    for (const auto& v : samples) mean += v[i];
    mean /= samples.size();
    double var = 0.0;
    for (const auto& v : samples) var += (v[i] - mean) * (v[i] - mean);
    total += var / samples.size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int runs = 40;
  PrintRunHeader(("Fig. 10: variance of Alg. 1 with MC-SV vs CC-SV (" +
                  std::to_string(runs) + " runs/point)")
                     .c_str(),
                 options);
  BenchJson json("bench_fig10_variance");

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    for (int n : {3, 6, 10}) {
      ScenarioRunner runner(MakeFemnistScenario(n, kind, options),
                            options);
      // Touch the ground truth so every coalition is cached; the variance
      // sweep then runs entirely against cached utilities.
      const std::vector<double>& exact = runner.GroundTruth();

      // Per-client stratified estimator (the m_{i,k} reading of Alg. 1):
      // every client covers every stratum, so the run-to-run variance
      // reflects the contribution dispersion Thm. 2 compares rather than
      // coverage gaps. gamma reports the mean evaluations per run.
      std::vector<int> samples = n == 3 ? std::vector<int>{1, 2, 3}
                                        : std::vector<int>{1, 2, 4, 8};
      ConsoleTable table({"m/stratum", "~gamma", "Var[MC-SV]",
                          "Var[CC-SV]", "lower"});
      for (int m : samples) {
        std::vector<std::vector<double>> mc_samples, cc_samples;
        size_t gamma_total = 0;
        for (int run = 0; run < runs; ++run) {
          PerClientStratifiedConfig config;
          config.samples_per_stratum = m;
          config.seed = options.seed + 997 * run + m;
          config.scheme = SvScheme::kMarginal;
          UtilitySession mc_session(&runner.cache());
          Result<ValuationResult> mc =
              PerClientStratifiedShapley(mc_session, config);
          if (!mc.ok()) return 1;
          mc_samples.push_back(mc->values);
          gamma_total += mc->num_trainings;

          config.scheme = SvScheme::kComplementary;
          UtilitySession cc_session(&runner.cache());
          Result<ValuationResult> cc =
              PerClientStratifiedShapley(cc_session, config);
          if (!cc.ok()) return 1;
          cc_samples.push_back(cc->values);
        }
        const double mc_var = TotalVariance(mc_samples, n);
        const double cc_var = TotalVariance(cc_samples, n);
        table.AddRow({std::to_string(m),
                      std::to_string(gamma_total / runs),
                      FormatDouble(mc_var, 6), FormatDouble(cc_var, 6),
                      mc_var <= cc_var ? "MC" : "CC"});
      }
      std::printf("--- %s ---\n", runner.description().c_str());
      table.Print(std::cout);
      std::printf("\n");

      // Fixed vs adaptive (Neyman) allocation of the shared-pool
      // estimator (Alg. 1, MC-SV, PairPolicy::kEvaluateOnDemand on both
      // arms so trainings are comparable). Across-run variance is the
      // Fig. 10 reading; trainings-to-target-error is the headline CI
      // metric, with the target self-calibrated to the worse arm's best
      // ladder error (floored at 0.2) so both arms always reach it.
      // Skipped at n=3: 7 coalitions leave no room to allocate.
      if (n < 6) continue;
      struct Arm {
        Arm(const char* name, bool adaptive)
            : name(name), adaptive(adaptive) {}
        const char* name;
        bool adaptive;
        std::vector<double> errors, trainings;
        double best_error = 1e300;
        double to_target = -1.0;
        double last_variance = 0.0;
      };
      Arm arms[2] = {{"fixed", false}, {"neyman", true}};
      ConsoleTable alloc_table(
          {"gamma", "allocation", "Var", "mean err", "mean trainings"});
      for (int gamma : {16, 32, 64, 128}) {
        for (Arm& arm : arms) {
          std::vector<std::vector<double>> value_samples;
          double err_sum = 0.0, train_sum = 0.0;
          for (int run = 0; run < runs; ++run) {
            const uint64_t seed = options.seed + 131 * run + gamma;
            UtilitySession session(&runner.cache());
            Result<ValuationResult> result =
                [&]() -> Result<ValuationResult> {
              if (arm.adaptive) {
                AdaptiveAllocationConfig config;
                config.total_rounds = gamma;
                config.seed = seed;
                config.pair_policy = PairPolicy::kEvaluateOnDemand;
                return AdaptiveStratifiedShapley(session, config);
              }
              StratifiedConfig config;
              config.total_rounds = gamma;
              config.seed = seed;
              config.pair_policy = PairPolicy::kEvaluateOnDemand;
              return StratifiedSamplingShapley(session, config);
            }();
            if (!result.ok()) {
              std::fprintf(stderr, "%s allocation failed: %s\n", arm.name,
                           result.status().ToString().c_str());
              return 1;
            }
            value_samples.push_back(result->values);
            err_sum += RelativeL2Error(exact, result->values);
            train_sum += static_cast<double>(result->num_trainings);
          }
          const double variance = TotalVariance(value_samples, n);
          arm.errors.push_back(err_sum / runs);
          arm.trainings.push_back(train_sum / runs);
          arm.best_error = std::min(arm.best_error, arm.errors.back());
          arm.last_variance = variance;
          alloc_table.AddRow({std::to_string(gamma), arm.name,
                              FormatDouble(variance, 6),
                              FormatDouble(arm.errors.back(), 4),
                              FormatDouble(arm.trainings.back(), 1)});
        }
        alloc_table.AddSeparator();
      }
      const double target_error =
          std::max({0.2, arms[0].best_error, arms[1].best_error});
      std::printf(
          "--- %s: fixed vs Neyman allocation (target err %.3f) ---\n",
          runner.description().c_str(), target_error);
      alloc_table.Print(std::cout);
      for (Arm& arm : arms) {
        for (size_t i = 0; i < arm.errors.size(); ++i) {
          if (arm.errors[i] <= target_error) {
            arm.to_target = arm.trainings[i];
            break;
          }
        }
        BenchJson::Record& record =
            json.Add(std::string("alloc_") + ModelKindName(kind) + "_n" +
                     std::to_string(n) + "_" + arm.name);
        record.Label("model", ModelKindName(kind))
            .Label("n", std::to_string(n))
            .Label("allocation", arm.name)
            .Metric("target_rel_l2", target_error)
            .Metric("best_rel_l2", arm.best_error)
            .Metric("total_variance", arm.last_variance)
            .Metric("trainings_to_target_error", arm.to_target);
        std::printf("%s: trainings to err<=%.3f: %.1f\n", arm.name,
                    target_error, arm.to_target);
      }
      std::printf("\n");
    }
  }
  Status written = json.WriteTo(options.json);
  if (!written.ok()) {
    std::fprintf(stderr, "writing --json failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  return 0;
}
