/// Reproduces Fig. 10: the across-run variance of the unified stratified
/// sampling framework (Alg. 1) under the MC-SV vs the CC-SV computation
/// scheme, as the budget gamma grows, for n in {3, 6, 10} on FEMNIST-style
/// data with MLP and CNN models. The paper's finding (and Thm. 2): MC-SV
/// has lower variance; both schemes' variance collapses once gamma covers
/// nearly all coalitions.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

namespace {

double TotalVariance(const std::vector<std::vector<double>>& samples,
                     int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    double mean = 0.0;
    for (const auto& v : samples) mean += v[i];
    mean /= samples.size();
    double var = 0.0;
    for (const auto& v : samples) var += (v[i] - mean) * (v[i] - mean);
    total += var / samples.size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int runs = 40;
  PrintRunHeader(("Fig. 10: variance of Alg. 1 with MC-SV vs CC-SV (" +
                  std::to_string(runs) + " runs/point)")
                     .c_str(),
                 options);

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    for (int n : {3, 6, 10}) {
      ScenarioRunner runner(MakeFemnistScenario(n, kind, options),
                            options);
      // Touch the ground truth so every coalition is cached; the variance
      // sweep then runs entirely against cached utilities.
      runner.GroundTruth();

      // Per-client stratified estimator (the m_{i,k} reading of Alg. 1):
      // every client covers every stratum, so the run-to-run variance
      // reflects the contribution dispersion Thm. 2 compares rather than
      // coverage gaps. gamma reports the mean evaluations per run.
      std::vector<int> samples = n == 3 ? std::vector<int>{1, 2, 3}
                                        : std::vector<int>{1, 2, 4, 8};
      ConsoleTable table({"m/stratum", "~gamma", "Var[MC-SV]",
                          "Var[CC-SV]", "lower"});
      for (int m : samples) {
        std::vector<std::vector<double>> mc_samples, cc_samples;
        size_t gamma_total = 0;
        for (int run = 0; run < runs; ++run) {
          PerClientStratifiedConfig config;
          config.samples_per_stratum = m;
          config.seed = options.seed + 997 * run + m;
          config.scheme = SvScheme::kMarginal;
          UtilitySession mc_session(&runner.cache());
          Result<ValuationResult> mc =
              PerClientStratifiedShapley(mc_session, config);
          if (!mc.ok()) return 1;
          mc_samples.push_back(mc->values);
          gamma_total += mc->num_trainings;

          config.scheme = SvScheme::kComplementary;
          UtilitySession cc_session(&runner.cache());
          Result<ValuationResult> cc =
              PerClientStratifiedShapley(cc_session, config);
          if (!cc.ok()) return 1;
          cc_samples.push_back(cc->values);
        }
        const double mc_var = TotalVariance(mc_samples, n);
        const double cc_var = TotalVariance(cc_samples, n);
        table.AddRow({std::to_string(m),
                      std::to_string(gamma_total / runs),
                      FormatDouble(mc_var, 6), FormatDouble(cc_var, 6),
                      mc_var <= cc_var ? "MC" : "CC"});
      }
      std::printf("--- %s ---\n", runner.description().c_str());
      table.Print(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}
