/// Reproduces Fig. 7: approximation error of the sampling-based algorithms
/// as the total sampling budget gamma grows, on the FEMNIST-style workload
/// with ten clients (MLP and CNN). Multiple independent runs per point
/// yield mean and standard deviation, exposing both convergence speed and
/// stability (the paper: IPSS reaches low error fastest and most stably).
///
/// A second section compares fixed vs adaptive (Neyman) stratum
/// allocation of Alg. 1 on the same workloads and emits the headline
/// trainings-to-target-error number into BenchJson (--json), where
/// tools/check_bench_regression.py tracks it as lower-is-better.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int repeats = 10;
  PrintRunHeader(("Fig. 7: error vs sampling rounds gamma (n=10, " +
                  std::to_string(repeats) + " runs per point)")
                     .c_str(),
                 options);
  BenchJson json("bench_fig7_sampling_rounds");

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    ScenarioRunner runner(MakeFemnistScenario(10, kind, options),
                          options);
    const std::vector<double>& exact = runner.GroundTruth();

    ConsoleTable table({"gamma", "algorithm", "mean err", "std err"});
    for (int gamma : {8, 16, 32, 64, 128, 256}) {
      for (Algo algo : SamplingAlgos()) {
        double sum = 0.0, sum_sq = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
          Result<AlgoRun> run =
              runner.Run(algo, gamma, options.seed + 101 * rep + gamma);
          if (!run.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                         run.status().ToString().c_str());
            return 1;
          }
          const double error =
              RelativeL2Error(exact, run->result.values);
          sum += error;
          sum_sq += error * error;
        }
        const double mean = sum / repeats;
        const double variance = std::max(0.0, sum_sq / repeats - mean * mean);
        table.AddRow({std::to_string(gamma), AlgoName(algo),
                      FormatDouble(mean, 4),
                      FormatDouble(std::sqrt(variance), 4)});
      }
      table.AddSeparator();
    }
    std::printf("--- %s ---\n", runner.description().c_str());
    table.Print(std::cout);
    std::printf("\n");

    // Fixed vs adaptive (Neyman) stratum allocation of Alg. 1 on the
    // same workload. Both arms run PairPolicy::kEvaluateOnDemand — the
    // Theorem 1/2 estimator, where every drawn coalition contributes a
    // pair — so num_trainings counts the same thing on both sides. The
    // headline number is trainings-to-target-error: the mean distinct
    // trainings at the first ladder gamma whose mean error reaches the
    // target. The target self-calibrates to the worse arm's best ladder
    // error (floored at 0.2) so both arms always reach it and the metric
    // stays present — and seeded-deterministic — at every --scale.
    struct Arm {
      Arm(const char* name, bool adaptive)
          : name(name), adaptive(adaptive) {}
      const char* name;
      bool adaptive;
      std::vector<double> errors, trainings;
      double best_error = 1e300;
      double to_target = -1.0;
    };
    Arm arms[2] = {{"fixed", false}, {"neyman", true}};
    ConsoleTable alloc_table(
        {"gamma", "allocation", "mean err", "mean trainings"});
    for (int gamma : {16, 32, 64, 128, 256}) {
      for (Arm& arm : arms) {
        double err_sum = 0.0, train_sum = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
          const uint64_t seed = options.seed + 131 * rep + gamma;
          UtilitySession session(&runner.cache());
          Result<ValuationResult> run = [&]() -> Result<ValuationResult> {
            if (arm.adaptive) {
              AdaptiveAllocationConfig config;
              config.total_rounds = gamma;
              config.seed = seed;
              config.pair_policy = PairPolicy::kEvaluateOnDemand;
              return AdaptiveStratifiedShapley(session, config);
            }
            StratifiedConfig config;
            config.total_rounds = gamma;
            config.seed = seed;
            config.pair_policy = PairPolicy::kEvaluateOnDemand;
            return StratifiedSamplingShapley(session, config);
          }();
          if (!run.ok()) {
            std::fprintf(stderr, "%s allocation failed: %s\n", arm.name,
                         run.status().ToString().c_str());
            return 1;
          }
          err_sum += RelativeL2Error(exact, run->values);
          train_sum += static_cast<double>(run->num_trainings);
        }
        arm.errors.push_back(err_sum / repeats);
        arm.trainings.push_back(train_sum / repeats);
        arm.best_error = std::min(arm.best_error, arm.errors.back());
        alloc_table.AddRow({std::to_string(gamma), arm.name,
                            FormatDouble(arm.errors.back(), 4),
                            FormatDouble(arm.trainings.back(), 1)});
      }
      alloc_table.AddSeparator();
    }
    const double target_error =
        std::max({0.2, arms[0].best_error, arms[1].best_error});
    std::printf("--- %s: fixed vs Neyman allocation (target err %.3f) ---\n",
                runner.description().c_str(), target_error);
    alloc_table.Print(std::cout);
    for (Arm& arm : arms) {
      for (size_t i = 0; i < arm.errors.size(); ++i) {
        if (arm.errors[i] <= target_error) {
          arm.to_target = arm.trainings[i];
          break;
        }
      }
      BenchJson::Record& record =
          json.Add(std::string("alloc_") + ModelKindName(kind) + "_" +
                   arm.name);
      record.Label("model", ModelKindName(kind))
          .Label("allocation", arm.name)
          .Metric("target_rel_l2", target_error)
          .Metric("best_rel_l2", arm.best_error)
          .Metric("trainings_to_target_error", arm.to_target);
      std::printf("%s: trainings to err<=%.3f: %.1f\n", arm.name,
                  target_error, arm.to_target);
    }
    std::printf("\n");
  }
  Status written = json.WriteTo(options.json);
  if (!written.ok()) {
    std::fprintf(stderr, "writing --json failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  return 0;
}
