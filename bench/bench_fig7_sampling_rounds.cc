/// Reproduces Fig. 7: approximation error of the sampling-based algorithms
/// as the total sampling budget gamma grows, on the FEMNIST-style workload
/// with ten clients (MLP and CNN). Multiple independent runs per point
/// yield mean and standard deviation, exposing both convergence speed and
/// stability (the paper: IPSS reaches low error fastest and most stably).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int repeats = 10;
  PrintRunHeader(("Fig. 7: error vs sampling rounds gamma (n=10, " +
                  std::to_string(repeats) + " runs per point)")
                     .c_str(),
                 options);

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    ScenarioRunner runner(MakeFemnistScenario(10, kind, options),
                          options);
    const std::vector<double>& exact = runner.GroundTruth();

    ConsoleTable table({"gamma", "algorithm", "mean err", "std err"});
    for (int gamma : {8, 16, 32, 64, 128, 256}) {
      for (Algo algo : SamplingAlgos()) {
        double sum = 0.0, sum_sq = 0.0;
        for (int rep = 0; rep < repeats; ++rep) {
          Result<AlgoRun> run =
              runner.Run(algo, gamma, options.seed + 101 * rep + gamma);
          if (!run.ok()) {
            std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                         run.status().ToString().c_str());
            return 1;
          }
          const double error =
              RelativeL2Error(exact, run->result.values);
          sum += error;
          sum_sq += error * error;
        }
        const double mean = sum / repeats;
        const double variance = std::max(0.0, sum_sq / repeats - mean * mean);
        table.AddRow({std::to_string(gamma), AlgoName(algo),
                      FormatDouble(mean, 4),
                      FormatDouble(std::sqrt(variance), 4)});
      }
      table.AddSeparator();
    }
    std::printf("--- %s ---\n", runner.description().c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
