/// Valuation-service throughput and cross-job dedup: N jobs over
/// overlapping scenarios, run (a) through one shared ValuationService and
/// (b) in isolation, demonstrating that the shared service trains far
/// fewer coalitions than N independent runs while producing identical
/// values.
///
///   ./bench_service_throughput                      # real FedAvg trainings
///   ./bench_service_throughput --scenario=linreg    # closed-form, instant
///   ./bench_service_throughput --workers=8 --n=7
///   ./bench_service_throughput --store-dir=/tmp/svc   # persistent stores
///
/// Output: one row per job (isolated trainings vs fresh trainings under
/// the shared service, reuse, value agreement) and aggregate dedup /
/// throughput numbers.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "ml/kernel_backend.h"
#include "service/cluster.h"
#include "service/cluster_worker.h"
#include "service/job_spec.h"
#include "service/valuation_service.h"
#include "util/stopwatch.h"

using namespace fedshap;

namespace {

struct Options {
  int workers = 4;
  int n = 6;
  std::string scenario = "digits";
  uint64_t seed = 2025;
  std::string json;  // --json=<path> / FEDSHAP_BENCH_JSON: BenchJson output
  // --store-dir=<dir> / FEDSHAP_BENCH_STORE_DIR: state directory for the
  // shared service run, so every workload opens its persistent segmented
  // utility store and the report carries segment/eviction stats. Empty =
  // memory-only (the historical behavior).
  std::string store_dir;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  if (const char* env = std::getenv("FEDSHAP_BENCH_JSON")) {
    options.json = env;
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_STORE_DIR")) {
    options.store_dir = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--n=", 0) == 0) {
      options.n = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--scenario=", 0) == 0) {
      options.scenario = arg.substr(11);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json = arg.substr(7);
    } else if (arg.rfind("--store-dir=", 0) == 0) {
      options.store_dir = arg.substr(12);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

/// The benchmark's job mix: two overlapping scenario tenants (same
/// workload family, different data seeds), each valued by four
/// estimators — the realistic "several analysts value the same
/// federation" service load.
std::vector<JobSpec> MakeJobs(const Options& options) {
  std::vector<JobSpec> jobs;
  const int gamma = 4 * options.n;
  for (int tenant = 0; tenant < 2; ++tenant) {
    ScenarioSpec scenario;
    scenario.kind = options.scenario;
    scenario.n = options.n;
    scenario.seed = options.seed + tenant;
    const std::string prefix = "t" + std::to_string(tenant) + "-";
    const struct {
      const char* suffix;
      EstimatorKind estimator;
    } mix[] = {
        {"ipss", EstimatorKind::kIpss},
        {"stratified", EstimatorKind::kStratified},
        {"exact", EstimatorKind::kExactMc},
        {"perm", EstimatorKind::kPermMc},
    };
    for (const auto& entry : mix) {
      JobSpec spec;
      spec.name = prefix + entry.suffix;
      spec.estimator = entry.estimator;
      spec.gamma = gamma;
      spec.seed = options.seed + 7 * tenant;
      spec.checkpoint_every = 8;
      spec.scenario = scenario;
      jobs.push_back(spec);
    }
  }
  return jobs;
}

struct RunOutcome {
  ValuationResult result;
  double wall_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseArgs(argc, argv);
  const std::vector<JobSpec> jobs = MakeJobs(options);
  std::printf("service throughput: %zu jobs over 2 overlapping %s "
              "scenarios, n=%d, workers=%d\n",
              jobs.size(), options.scenario.c_str(), options.n,
              options.workers);
  std::printf("%s\n\n", KernelProvenanceString().c_str());

  // (a) Isolated baseline: every job in its own single-worker service
  // with its own cache — what N independent main()s would do.
  std::vector<RunOutcome> isolated(jobs.size());
  double isolated_wall = 0.0;
  size_t isolated_trainings = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    ServiceConfig config;
    config.workers = 1;
    ValuationService service(config);
    Stopwatch timer;
    if (Status submitted = service.Submit(jobs[i]); !submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
    Result<ValuationResult> result = service.Wait(jobs[i].name);
    if (!result.ok()) {
      std::fprintf(stderr, "job %s failed: %s\n", jobs[i].name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    isolated[i].result = std::move(result).value();
    isolated[i].wall_seconds = timer.ElapsedSeconds();
    isolated_wall += isolated[i].wall_seconds;
    isolated_trainings += isolated[i].result.num_trainings;
  }

  // (b) The shared service: all jobs concurrently over one workload
  // table — overlapping jobs dedup through the single-flight cache.
  ServiceConfig config;
  config.workers = options.workers;
  config.state_dir = options.store_dir;
  ValuationService service(config);
  Stopwatch shared_timer;
  for (const JobSpec& spec : jobs) {
    if (Status submitted = service.Submit(spec); !submitted.ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
  }
  service.WaitAll();
  const double shared_wall = shared_timer.ElapsedSeconds();

  std::printf("%-14s %-11s %10s %10s %8s %9s %7s\n", "job", "estimator",
              "isolated", "fresh", "reused", "charged", "equal");
  size_t shared_fresh = 0;
  bool all_equal = true;
  for (size_t i = 0; i < jobs.size(); ++i) {
    Result<JobStatus> status = service.GetStatus(jobs[i].name);
    if (!status.ok() || status->state != JobState::kDone) {
      std::fprintf(stderr, "job %s did not finish\n", jobs[i].name.c_str());
      return 1;
    }
    const ValuationResult& shared = status->result;
    const bool equal = shared.values == isolated[i].result.values;
    all_equal = all_equal && equal;
    shared_fresh += shared.num_fresh_trainings;
    std::printf("%-14s %-11s %10zu %10zu %8zu %8.3fs %7s\n",
                jobs[i].name.c_str(),
                EstimatorKindName(jobs[i].estimator),
                isolated[i].result.num_trainings,
                shared.num_fresh_trainings,
                shared.num_trainings - shared.num_fresh_trainings,
                shared.charged_seconds, equal ? "yes" : "NO");
  }

  // (c) The same job mix with speculative prefetch enabled: a fresh
  // in-memory service (cold caches, same worker count) so the wall time
  // is directly comparable to (b)'s cold shared run. Prefetch only
  // reorders who trains what — values must stay bit-identical.
  std::vector<JobSpec> prefetched_jobs = jobs;
  for (JobSpec& spec : prefetched_jobs) {
    spec.prefetch = 2 * spec.checkpoint_every;
  }
  ServiceConfig prefetch_config;
  prefetch_config.workers = options.workers;
  ValuationService prefetch_service(prefetch_config);
  Stopwatch prefetch_timer;
  for (const JobSpec& spec : prefetched_jobs) {
    if (Status submitted = prefetch_service.Submit(spec); !submitted.ok()) {
      std::fprintf(stderr, "prefetch submit failed: %s\n",
                   submitted.ToString().c_str());
      return 1;
    }
  }
  prefetch_service.WaitAll();
  const double prefetch_wall = prefetch_timer.ElapsedSeconds();
  for (size_t i = 0; i < prefetched_jobs.size(); ++i) {
    Result<JobStatus> status =
        prefetch_service.GetStatus(prefetched_jobs[i].name);
    if (!status.ok() || status->state != JobState::kDone) {
      std::fprintf(stderr, "prefetched job %s did not finish\n",
                   prefetched_jobs[i].name.c_str());
      return 1;
    }
    const bool equal = status->result.values == isolated[i].result.values;
    if (!equal) {
      std::fprintf(stderr, "prefetched job %s diverged from isolated\n",
                   prefetched_jobs[i].name.c_str());
    }
    all_equal = all_equal && equal;
  }
  const ServiceStats prefetch_stats = prefetch_service.stats();
  const double hit_ahead_ratio =
      prefetch_stats.prefetch_credited > 0
          ? static_cast<double>(prefetch_stats.prefetch_consumed) /
                static_cast<double>(prefetch_stats.prefetch_credited)
          : 0.0;

  // (d) The sharded cluster: the same mix through a coordinator service
  // whose cache misses are trained by {1, 2, 4} local worker shards
  // (thread mode), plus one faulted run that SIGKILL-equivalently kills
  // a worker after its 3rd training — the reassignment path under
  // bench-scale load. Values must stay bit-identical at every topology.
  struct ClusterOutcome {
    int workers = 0;
    double wall_seconds = 0.0;
  };
  std::vector<ClusterOutcome> cluster_runs;
  size_t faulted_reassigned = 0;
  size_t faulted_lost = 0;
  auto run_cluster = [&](const LocalClusterOptions& cluster_options,
                         double* wall_out, ClusterStats* stats_out) -> bool {
    Result<std::unique_ptr<LocalCluster>> cluster =
        LocalCluster::Start(cluster_options);
    if (!cluster.ok()) {
      std::fprintf(stderr, "cluster start failed: %s\n",
                   cluster.status().ToString().c_str());
      return false;
    }
    ServiceConfig cluster_config;
    cluster_config.workers = options.workers;
    cluster_config.cluster = (*cluster)->dispatcher();
    bool ok = true;
    {
      ValuationService cluster_service(cluster_config);
      Stopwatch timer;
      for (const JobSpec& spec : jobs) {
        if (Status submitted = cluster_service.Submit(spec); !submitted.ok()) {
          std::fprintf(stderr, "cluster submit failed: %s\n",
                       submitted.ToString().c_str());
          return false;
        }
      }
      cluster_service.WaitAll();
      *wall_out = timer.ElapsedSeconds();
      for (size_t i = 0; i < jobs.size(); ++i) {
        Result<JobStatus> status = cluster_service.GetStatus(jobs[i].name);
        if (!status.ok() || status->state != JobState::kDone) {
          std::fprintf(stderr, "cluster job %s did not finish\n",
                       jobs[i].name.c_str());
          ok = false;
          continue;
        }
        if (status->result.values != isolated[i].result.values) {
          std::fprintf(stderr, "cluster job %s diverged from isolated\n",
                       jobs[i].name.c_str());
          ok = false;
        }
      }
      *stats_out = (*cluster)->dispatcher()->stats();
    }  // service joins its workers before the cluster goes away
    (*cluster)->Shutdown();
    return ok;
  };
  auto base_cluster_options = [](int cluster_workers) {
    LocalClusterOptions cluster_options;
    cluster_options.num_workers = cluster_workers;
    cluster_options.dispatcher.heartbeat_timeout_ms = 2000;
    return cluster_options;
  };
  for (int cluster_workers : {1, 2, 4}) {
    ClusterOutcome outcome;
    outcome.workers = cluster_workers;
    ClusterStats cluster_stats;
    if (!run_cluster(base_cluster_options(cluster_workers),
                     &outcome.wall_seconds, &cluster_stats)) {
      all_equal = false;
    }
    cluster_runs.push_back(outcome);
  }
  {
    double faulted_wall = 0.0;
    ClusterStats cluster_stats;
    LocalClusterOptions faulted_options = base_cluster_options(2);
    faulted_options.fault_specs = {"kill-worker:after=3"};
    if (!run_cluster(faulted_options, &faulted_wall, &cluster_stats)) {
      all_equal = false;
    }
    faulted_reassigned = cluster_stats.reassigned_coalitions;
    faulted_lost = cluster_stats.workers_lost;
  }
  const double cluster_speedup =
      cluster_runs.back().wall_seconds > 0
          ? cluster_runs.front().wall_seconds / cluster_runs.back().wall_seconds
          : 0.0;

  // (e) Loopback TCP: the same mix through the real listener/connector
  // and registration handshake — once clean (the transport's overhead
  // against the 2-shard socketpair run), once with an injected mid-run
  // partition (the reconnect/recovery path under bench-scale load), and
  // once with the lone worker killed mid-run and a short grace window
  // (degraded mode: the coordinator trains the remainder locally).
  // Values must stay bit-identical in all three.
  double tcp_wall = 0.0;
  ClusterStats tcp_stats;
  {
    LocalClusterOptions tcp_options = base_cluster_options(2);
    tcp_options.transport = ClusterTransport::kTcp;
    if (!run_cluster(tcp_options, &tcp_wall, &tcp_stats)) all_equal = false;
  }
  const double socketpair_wall = cluster_runs[1].wall_seconds;  // 2 workers
  const double tcp_overhead_ratio =
      socketpair_wall > 0 ? tcp_wall / socketpair_wall : 0.0;
  double tcp_partition_wall = 0.0;
  ClusterStats tcp_partition_stats;
  {
    LocalClusterOptions partition_options = base_cluster_options(1);
    partition_options.transport = ClusterTransport::kTcp;
    partition_options.fault_specs = {"partition:nth=3"};
    partition_options.reconnect_base_ms = 25;
    partition_options.reconnect_cap_ms = 400;
    partition_options.dispatcher.task_retry_ms = 200;
    partition_options.dispatcher.degraded_grace_ms = 10000;  // heal, not
                                                             // degrade
    if (!run_cluster(partition_options, &tcp_partition_wall,
                     &tcp_partition_stats)) {
      all_equal = false;
    }
  }
  double degraded_wall = 0.0;
  ClusterStats degraded_stats;
  {
    LocalClusterOptions degraded_options = base_cluster_options(1);
    degraded_options.fault_specs = {"kill-worker:after=2"};
    degraded_options.dispatcher.heartbeat_timeout_ms = 500;
    degraded_options.dispatcher.degraded_grace_ms = 100;
    if (!run_cluster(degraded_options, &degraded_wall, &degraded_stats)) {
      all_equal = false;
    }
  }

  const ServiceStats stats = service.stats();
  std::printf("\naggregate:\n");
  std::printf("  trainings, %zu isolated runs:   %zu\n", jobs.size(),
              isolated_trainings);
  std::printf("  trainings, shared service:     %zu (%.2fx dedup)\n",
              stats.trainings_computed,
              stats.trainings_computed > 0
                  ? static_cast<double>(isolated_trainings) /
                        static_cast<double>(stats.trainings_computed)
                  : 0.0);
  std::printf("  per-job fresh sum:             %zu\n", shared_fresh);
  std::printf("  wall, isolated (sequential):   %.3fs\n", isolated_wall);
  std::printf("  wall, shared (%d workers):      %.3fs (%.2fx)\n",
              options.workers, shared_wall,
              shared_wall > 0 ? isolated_wall / shared_wall : 0.0);
  std::printf("  throughput:                    %.1f jobs/s\n",
              shared_wall > 0 ? jobs.size() / shared_wall : 0.0);
  std::printf("  wall, shared + prefetch:       %.3fs (%.2fx vs shared; "
              "%zu trainings run ahead, hit-ahead %.2f)\n",
              prefetch_wall,
              prefetch_wall > 0 ? shared_wall / prefetch_wall : 0.0,
              prefetch_stats.prefetch_trainings, hit_ahead_ratio);
  std::printf("  cluster wall by workers:       ");
  for (const ClusterOutcome& outcome : cluster_runs) {
    std::printf("%d->%.3fs  ", outcome.workers, outcome.wall_seconds);
  }
  std::printf("(%.2fx at %d shards)\n", cluster_speedup,
              cluster_runs.back().workers);
  std::printf("  cluster faulted run:           lost=%zu reassigned=%zu\n",
              faulted_lost, faulted_reassigned);
  std::printf("  wall, loopback TCP (2 shards): %.3fs (%.2fx vs socketpair)\n",
              tcp_wall, tcp_overhead_ratio);
  std::printf("  tcp partitioned run:           %.3fs, reconnects=%zu, "
              "recovery=%.3fs\n",
              tcp_partition_wall, tcp_partition_stats.worker_reconnects,
              tcp_partition_stats.recovery_seconds_total);
  std::printf("  degraded run:                  %.3fs, %zu coalition(s) "
              "trained on the coordinator\n",
              degraded_wall, degraded_stats.degraded_evaluations);
  std::printf("  values identical to isolated:  %s\n",
              all_equal ? "yes" : "NO");
  if (!options.store_dir.empty()) {
    std::printf("  store entries/segments/bytes:  %zu / %zu / %llu "
                "(mapped %llu, evictions %zu, compactions %zu)\n",
                stats.store_entries, stats.store_segments,
                static_cast<unsigned long long>(stats.store_bytes),
                static_cast<unsigned long long>(stats.store_mapped_bytes),
                stats.store_evictions, stats.store_compactions);
  }

  bench::BenchJson json("service_throughput");
  json.Add("aggregate")
      .Label("scenario", options.scenario)
      .Metric("jobs", static_cast<double>(jobs.size()))
      .Metric("workers", options.workers)
      .Metric("trainings_isolated", static_cast<double>(isolated_trainings))
      .Metric("trainings_shared",
              static_cast<double>(stats.trainings_computed))
      .Metric("dedup_factor",
              stats.trainings_computed > 0
                  ? static_cast<double>(isolated_trainings) /
                        static_cast<double>(stats.trainings_computed)
                  : 0.0)
      .Metric("wall_isolated_seconds", isolated_wall)
      .Metric("wall_shared_seconds", shared_wall)
      .Metric("shared_speedup",
              shared_wall > 0 ? isolated_wall / shared_wall : 0.0)
      .Metric("jobs_per_second",
              shared_wall > 0 ? jobs.size() / shared_wall : 0.0)
      .Metric("values_identical", all_equal ? 1.0 : 0.0);
  json.Add("prefetch")
      .Label("scenario", options.scenario)
      .Metric("wall_prefetch_seconds", prefetch_wall)
      .Metric("prefetch_speedup",
              prefetch_wall > 0 ? shared_wall / prefetch_wall : 0.0)
      .Metric("trainings_run_ahead",
              static_cast<double>(prefetch_stats.prefetch_trainings))
      .Metric("hit_ahead_ratio", hit_ahead_ratio);
  bench::BenchJson::Record& cluster_entry = json.Add("cluster");
  cluster_entry.Label("scenario", options.scenario);
  for (const ClusterOutcome& outcome : cluster_runs) {
    cluster_entry.Metric(
        "wall_workers_" + std::to_string(outcome.workers) + "_seconds",
        outcome.wall_seconds);
  }
  cluster_entry
      .Metric("cluster_speedup", cluster_speedup)
      .Metric("reassigned_coalitions", static_cast<double>(faulted_reassigned))
      .Metric("workers_lost", static_cast<double>(faulted_lost));
  json.Add("tcp")
      .Label("scenario", options.scenario)
      .Metric("wall_tcp_seconds", tcp_wall)
      .Metric("tcp_overhead_ratio", tcp_overhead_ratio)
      .Metric("reconnects",
              static_cast<double>(tcp_partition_stats.worker_reconnects))
      .Metric("partition_recovery_seconds",
              tcp_partition_stats.recovery_seconds_total)
      .Metric("degraded_coalitions",
              static_cast<double>(degraded_stats.degraded_evaluations));
  json.Add("store")
      .Label("scenario", options.scenario)
      .Label("persistent", options.store_dir.empty() ? "no" : "yes")
      .Metric("entries", static_cast<double>(stats.store_entries))
      .Metric("segments", static_cast<double>(stats.store_segments))
      .Metric("bytes", static_cast<double>(stats.store_bytes))
      .Metric("mapped_bytes",
              static_cast<double>(stats.store_mapped_bytes))
      .Metric("evictions", static_cast<double>(stats.store_evictions))
      .Metric("compactions", static_cast<double>(stats.store_compactions))
      .Metric("current_rss_bytes",
              static_cast<double>(bench::CurrentRssBytes()));
  if (Status written = json.WriteTo(options.json); !written.ok()) {
    std::fprintf(stderr, "bench JSON write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  if (!options.json.empty()) {
    std::printf("[json] wrote %s\n", options.json.c_str());
  }
  return all_equal ? 0 : 1;
}
