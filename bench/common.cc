#include "common.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/cc_shapley.h"
#include "baselines/dig_fl.h"
#include "baselines/extended_gtb.h"
#include "baselines/extended_tmc.h"
#include "baselines/gtg_shapley.h"
#include "baselines/lambda_mr.h"
#include "baselines/or_baseline.h"
#include "core/kgreedy.h"
#include "core/valuation_metrics.h"
#include "data/synthetic.h"
#include "ml/cnn.h"
#include "ml/kernel_backend.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "util/logging.h"
#include "util/combinatorics.h"
#include "util/table.h"

namespace fedshap {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  if (const char* env = std::getenv("FEDSHAP_BENCH_SCALE")) {
    options.scale = std::atof(env);
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_THREADS")) {
    options.threads = std::atoi(env);
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_BATCH_SIZE")) {
    options.batch_size = std::atoi(env);
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_CACHE_FILE")) {
    options.cache_file = env;
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_STORE_DIR")) {
    options.store_dir = env;
  }
  if (const char* env = std::getenv("FEDSHAP_BENCH_JSON")) {
    options.json = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = std::atof(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--quick") {
      options.scale = 0.4;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      options.batch_size = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--cache-file=", 0) == 0) {
      options.cache_file = arg.substr(13);
    } else if (arg.rfind("--store-dir=", 0) == 0) {
      options.store_dir = arg.substr(12);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json = arg.substr(7);
    }
  }
  if (options.scale <= 0.0) options.scale = 1.0;
  if (options.threads == 0) options.threads = ThreadPool::DefaultThreads();
  if (options.threads < 1) options.threads = 1;
  if (options.batch_size < 0) options.batch_size = 0;
  return options;
}

size_t BenchOptions::ScaledRows(size_t rows) const {
  const size_t scaled = static_cast<size_t>(rows * scale);
  return std::max<size_t>(scaled, 64);
}

namespace {

/// Reads a `<field>  1234 kB` line from /proc/self/status (Linux); other
/// platforms get 0, and consumers treat 0 as "no reading".
uint64_t ReadRssBytes(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t bytes = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, std::strlen(field)) != 0) continue;
    bytes = std::strtoull(line + std::strlen(field), nullptr, 10) * 1024;
    break;
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

std::string BenchOptions::StoreStem() const {
  if (!cache_file.empty()) return cache_file;
  if (!store_dir.empty()) return store_dir + "/utilities";
  return "";
}

uint64_t PeakRssBytes() { return ReadRssBytes("VmHWM:"); }

uint64_t CurrentRssBytes() { return ReadRssBytes("VmRSS:"); }

void PrintRunHeader(const char* title, const BenchOptions& options,
                    bool runner_backed) {
  std::printf("=== %s ===\n", title);
  if (runner_backed) {
    char batch[16] = "default";
    if (options.batch_size > 0) {
      std::snprintf(batch, sizeof(batch), "%d", options.batch_size);
    }
    std::printf(
        "config: scale=%.2f seed=%llu threads=%d batch-size=%s cache=%s "
        "resume=%s\n",
        options.scale, static_cast<unsigned long long>(options.seed),
        options.threads, batch,
        options.StoreStem().empty() ? "(none)" : options.StoreStem().c_str(),
        options.resume ? "yes" : "no");
  } else {
    std::printf(
        "config: scale=%.2f seed=%llu (closed-form utilities, reseeded "
        "per run: --threads/--cache-file do not apply)\n",
        options.scale, static_cast<unsigned long long>(options.seed));
  }
  // Hardware provenance: which kernel backend produced these numbers
  // and how many compute slots the run could use.
  std::printf("%s\n\n", KernelProvenanceString().c_str());
}

// ---------------------------------------------------------------------------
// BenchJson

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // JSON has no inf/nan literals; null keeps consumers parsing.
  if (std::isnan(value) || std::isinf(value)) return "null";
  return buf;
}

}  // namespace

BenchJson::Record& BenchJson::Record::Label(const std::string& key,
                                            const std::string& value) {
  labels_.emplace_back(key, value);
  return *this;
}

BenchJson::Record& BenchJson::Record::Metric(const std::string& key,
                                             double value) {
  metrics_.emplace_back(key, value);
  return *this;
}

BenchJson::Record& BenchJson::Add(const std::string& name) {
  records_.emplace_back();
  records_.back().name_ = name;
  return records_.back();
}

Status BenchJson::WriteTo(const std::string& path) const {
  if (path.empty()) return Status::OK();
  std::string out;
  out += "{\n  \"bench\": \"" + JsonEscape(bench_name_) + "\",\n";
  out += "  \"provenance\": {\n";
  out += "    \"kernel_backend\": \"" +
         std::string(KernelBackendName(SelectedKernelBackend())) + "\",\n";
  out += "    \"worker_budget\": " +
         std::to_string(WorkerBudget::Global().total()) + ",\n";
  out += "    \"hardware_threads\": " +
         std::to_string(ThreadPool::DefaultThreads()) + ",\n";
  out += "    \"peak_rss_bytes\": " + std::to_string(PeakRssBytes()) + "\n";
  out += "  },\n  \"records\": [\n";
  for (size_t i = 0; i < records_.size(); ++i) {
    const Record& record = records_[i];
    out += "    {\"name\": \"" + JsonEscape(record.name_) + "\"";
    for (const auto& [key, value] : record.labels_) {
      out += ", \"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
    }
    for (const auto& [key, value] : record.metrics_) {
      out += ", \"" + JsonEscape(key) + "\": " + JsonNumber(value);
    }
    out += i + 1 < records_.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open bench JSON output: " + path);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), f);
  const int closed = std::fclose(f);
  if (written != out.size() || closed != 0) {
    return Status::Internal("short write to bench JSON output: " + path);
  }
  return Status::OK();
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMlp:
      return "MLP";
    case ModelKind::kCnn:
      return "CNN";
    case ModelKind::kLogReg:
      return "LogReg";
    case ModelKind::kXgb:
      return "XGB";
  }
  return "?";
}

namespace {

constexpr int kImageSide = 8;
constexpr int kDigitClasses = 10;

std::unique_ptr<Model> MakePrototype(ModelKind kind, int features,
                                     int classes, uint64_t seed) {
  std::unique_ptr<Model> model;
  switch (kind) {
    case ModelKind::kMlp:
      model = std::make_unique<Mlp>(features, 16, classes);
      break;
    case ModelKind::kCnn: {
      const int side = static_cast<int>(std::lround(std::sqrt(features)));
      FEDSHAP_CHECK(side * side == features);
      model = std::make_unique<Cnn>(side, 4, classes);
      break;
    }
    case ModelKind::kLogReg:
      model = std::make_unique<LogisticRegression>(features, classes);
      break;
    case ModelKind::kXgb:
      FEDSHAP_CHECK(false);  // GBDT is not a gradient Model
  }
  Rng rng(seed);
  model->InitializeParameters(rng);
  return model;
}

FedAvgConfig MakeFedAvgConfig(ModelKind kind, uint64_t seed,
                              int batch_size_override) {
  FedAvgConfig config;
  config.rounds = 5;
  config.local.epochs = 2;
  config.local.batch_size = 16;
  config.local.learning_rate = kind == ModelKind::kCnn ? 0.15 : 0.25;
  config.seed = seed;
  if (batch_size_override > 0) config.local.batch_size = batch_size_override;
  return config;
}

Scenario AssembleFedAvg(std::vector<Dataset> clients, Dataset test,
                        ModelKind kind, int classes, uint64_t seed,
                        int batch_size_override, std::string description) {
  const int features = test.num_features();
  std::unique_ptr<Model> prototype =
      MakePrototype(kind, features, classes, seed + 17);
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients), std::move(test), *prototype,
      MakeFedAvgConfig(kind, seed, batch_size_override));
  FEDSHAP_CHECK_OK(utility.status());
  Scenario scenario;
  scenario.n = static_cast<int>((*utility)->num_clients());
  scenario.fedavg = utility->get();
  scenario.utility = std::move(utility).value();
  scenario.description = std::move(description);
  return scenario;
}

}  // namespace

Scenario MakeFemnistScenario(int n, ModelKind kind,
                             const BenchOptions& options) {
  FEDSHAP_CHECK(kind != ModelKind::kXgb);
  DigitsConfig digits;
  digits.image_size = kImageSide;
  digits.num_classes = kDigitClasses;
  digits.num_writers = 4 * n;
  digits.pixel_noise = 0.3;
  digits.writer_shift = 0.25;
  Rng rng(options.seed);
  const size_t rows = options.ScaledRows(350 * n + 400);
  Result<FederatedSource> source = GenerateDigits(digits, rows, rng);
  FEDSHAP_CHECK_OK(source.status());

  // Hold out a test set (last rows; generation order is i.i.d.).
  const size_t test_rows = options.ScaledRows(400);
  const size_t train_rows = source->data.size() - test_rows;
  FederatedSource train;
  train.num_groups = source->num_groups;
  train.data = source->data.Head(train_rows);
  train.group_ids.assign(source->group_ids.begin(),
                         source->group_ids.begin() + train_rows);
  Dataset test;
  {
    std::vector<size_t> idx;
    for (size_t i = train_rows; i < source->data.size(); ++i) {
      idx.push_back(i);
    }
    test = source->data.Subset(idx);
  }

  Result<std::vector<Dataset>> clients = PartitionByGroup(train, n, rng);
  FEDSHAP_CHECK_OK(clients.status());
  return AssembleFedAvg(std::move(clients).value(), std::move(test), kind,
                        kDigitClasses, options.seed, options.batch_size,
                        "FEMNIST-like digits, by-writer, n=" +
                            std::to_string(n) + ", " + ModelKindName(kind));
}

Scenario MakeAdultScenario(int n, ModelKind kind,
                           const BenchOptions& options) {
  TabularConfig tabular;
  tabular.num_occupations = std::max(12, 4 * n);
  Rng rng(options.seed + 1);
  const size_t rows = options.ScaledRows(400 * n + 500);
  Result<FederatedSource> source = GenerateTabular(tabular, rows, rng);
  FEDSHAP_CHECK_OK(source.status());

  const size_t test_rows = options.ScaledRows(400);
  const size_t train_rows = source->data.size() - test_rows;
  FederatedSource train;
  train.num_groups = source->num_groups;
  train.data = source->data.Head(train_rows);
  train.group_ids.assign(source->group_ids.begin(),
                         source->group_ids.begin() + train_rows);
  Dataset test;
  {
    std::vector<size_t> idx;
    for (size_t i = train_rows; i < source->data.size(); ++i) {
      idx.push_back(i);
    }
    test = source->data.Subset(idx);
  }
  Result<std::vector<Dataset>> clients = PartitionByGroup(train, n, rng);
  FEDSHAP_CHECK_OK(clients.status());

  const std::string description = "Adult-like tabular, by-occupation, n=" +
                                  std::to_string(n) + ", " +
                                  ModelKindName(kind);
  if (kind == ModelKind::kXgb) {
    GbdtConfig gbdt;
    gbdt.num_trees = 20;
    gbdt.max_depth = 3;
    Result<std::unique_ptr<GbdtUtility>> utility = GbdtUtility::Create(
        std::move(clients).value(), std::move(test), gbdt);
    FEDSHAP_CHECK_OK(utility.status());
    Scenario scenario;
    scenario.n = n;
    scenario.utility = std::move(utility).value();
    scenario.description = description;
    return scenario;
  }
  return AssembleFedAvg(std::move(clients).value(), std::move(test), kind,
                        2, options.seed + 1, options.batch_size, description);
}

Scenario MakeSyntheticScenario(PartitionScheme scheme, int n, ModelKind kind,
                               const BenchOptions& options) {
  FEDSHAP_CHECK(kind != ModelKind::kXgb);
  DigitsConfig digits;
  digits.image_size = kImageSide;
  digits.num_classes = kDigitClasses;
  digits.num_writers = 1;  // IID pool; the partitioner creates the setup
  digits.pixel_noise = 0.3;
  Rng rng(options.seed + 2);
  const size_t rows = options.ScaledRows(350 * n + 400);
  Result<FederatedSource> source = GenerateDigits(digits, rows, rng);
  FEDSHAP_CHECK_OK(source.status());

  const size_t test_rows = options.ScaledRows(400);
  const size_t train_rows = source->data.size() - test_rows;
  Dataset train = source->data.Head(train_rows);
  Dataset test;
  {
    std::vector<size_t> idx;
    for (size_t i = train_rows; i < source->data.size(); ++i) {
      idx.push_back(i);
    }
    test = source->data.Subset(idx);
  }

  PartitionConfig part;
  part.scheme = scheme;
  part.num_clients = n;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  FEDSHAP_CHECK_OK(clients.status());
  return AssembleFedAvg(std::move(clients).value(), std::move(test), kind,
                        kDigitClasses, options.seed + 2, options.batch_size,
                        std::string(PartitionSchemeName(scheme)) + ", n=" +
                            std::to_string(n) + ", " + ModelKindName(kind));
}

ScalabilityScenario MakeScalabilityScenario(int n,
                                            const BenchOptions& options) {
  DigitsConfig digits;
  digits.image_size = 6;  // 36 features: the scalability bench is volume
  digits.num_classes = 5;
  digits.num_writers = 1;
  digits.pixel_noise = 0.3;
  Rng rng(options.seed + 3);
  const size_t per_client = options.ScaledRows(600) / 20;  // ~30 rows
  Result<FederatedSource> source =
      GenerateDigits(digits, per_client * n + 300, rng);
  FEDSHAP_CHECK_OK(source.status());
  Dataset pool = source->data.Head(per_client * n);
  Dataset test;
  {
    std::vector<size_t> idx;
    for (size_t i = per_client * n; i < source->data.size(); ++i) {
      idx.push_back(i);
    }
    test = source->data.Subset(idx);
  }

  // Base equal split.
  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeSameDist;
  part.num_clients = n;
  Result<std::vector<Dataset>> clients = PartitionDataset(pool, part, rng);
  FEDSHAP_CHECK_OK(clients.status());
  std::vector<Dataset> all = std::move(clients).value();

  // Plant 5% free riders (empty datasets) and 5% duplicates (same data as
  // a partner), as in Fig. 9.
  ScalabilityScenario result;
  const int nulls = std::max(1, n / 20);
  const int dups = std::max(1, n / 20);
  for (int j = 0; j < nulls; ++j) {
    const int victim = n - 1 - j;
    Result<Dataset> empty =
        Dataset::Create(pool.num_features(), pool.num_classes());
    FEDSHAP_CHECK_OK(empty.status());
    all[victim] = std::move(empty).value();
    result.null_players.push_back(victim);
  }
  for (int j = 0; j < dups; ++j) {
    const int a = 2 * j;      // keep its data
    const int b = 2 * j + 1;  // becomes a's twin
    all[b] = all[a];
    result.duplicate_pairs.emplace_back(a, b);
  }

  LogisticRegression prototype(pool.num_features(), pool.num_classes());
  Rng init(options.seed + 4);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 2;
  config.local.epochs = 1;
  config.local.batch_size = 16;
  config.local.learning_rate = 0.3;
  config.seed = options.seed + 5;
  if (options.batch_size > 0) config.local.batch_size = options.batch_size;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(all), std::move(test), prototype, config);
  FEDSHAP_CHECK_OK(utility.status());
  result.scenario.n = n;
  result.scenario.fedavg = utility->get();
  result.scenario.utility = std::move(utility).value();
  result.scenario.description =
      "scalability digits, n=" + std::to_string(n) + ", LogReg";
  return result;
}

int PaperGamma(int n) {
  switch (n) {
    case 3:
      return 5;
    case 6:
      return 8;
    case 10:
      return 32;
    default:
      return std::max(4, static_cast<int>(std::lround(
                             n * std::log2(static_cast<double>(n)))));
  }
}

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kPermShapley:
      return "Perm-Shap.";
    case Algo::kMcShapley:
      return "MC-Shap.";
    case Algo::kDigFl:
      return "DIG-FL";
    case Algo::kExtTmc:
      return "Ext-TMC";
    case Algo::kExtGtb:
      return "Ext-GTB";
    case Algo::kCcShapley:
      return "CC-Shap.";
    case Algo::kGtgShapley:
      return "GTG-Shap.";
    case Algo::kOr:
      return "OR";
    case Algo::kLambdaMr:
      return "lambda-MR";
    case Algo::kIpss:
      return "IPSS";
  }
  return "?";
}

std::vector<Algo> AllAlgos() {
  return {Algo::kPermShapley, Algo::kMcShapley, Algo::kDigFl,
          Algo::kExtTmc,      Algo::kExtGtb,    Algo::kCcShapley,
          Algo::kGtgShapley,  Algo::kOr,        Algo::kLambdaMr,
          Algo::kIpss};
}

std::vector<Algo> SamplingAlgos() {
  return {Algo::kExtTmc, Algo::kExtGtb, Algo::kCcShapley, Algo::kIpss};
}

ScenarioRunner::ScenarioRunner(Scenario scenario, int threads)
    : scenario_(std::move(scenario)), cache_(scenario_.utility.get()) {
  if (threads == 0) threads = ThreadPool::DefaultThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

ScenarioRunner::ScenarioRunner(Scenario scenario,
                               const BenchOptions& options)
    : ScenarioRunner(std::move(scenario), options.threads) {
  const std::string stem = options.StoreStem();
  if (stem.empty()) return;
  // Flush after every training (flush_bytes=1: any appended byte trips
  // the interval): one bench utility evaluation is a full FL training,
  // so fsync cost is noise next to what a crash would otherwise lose.
  Result<std::unique_ptr<UtilityStore>> store =
      OpenAndAttachStore(stem, options.resume, *scenario_.utility, cache_,
                         /*flush_bytes=*/1);
  FEDSHAP_CHECK_OK(store.status());
  store_ = std::move(store).value();
  std::printf("[cache] %s: %zu utilities loaded (%s)\n",
              store_->path().c_str(), store_->loaded_entries(),
              scenario_.description.c_str());
}

ScenarioRunner::~ScenarioRunner() {
  if (store_ != nullptr) {
    Status flushed = store_->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "[cache] final flush failed: %s\n",
                   flushed.ToString().c_str());
    }
  }
}

Result<ReconstructionContext*> ScenarioRunner::GetContext() {
  if (scenario_.fedavg == nullptr) {
    return Status::FailedPrecondition(
        "gradient-based baselines need a FedAvg utility");
  }
  if (context_ == nullptr) {
    FEDSHAP_ASSIGN_OR_RETURN(context_,
                             ReconstructionContext::Create(
                                 *scenario_.fedavg));
  }
  return context_.get();
}

const std::vector<double>& ScenarioRunner::GroundTruth() {
  if (!ground_truth_.has_value()) {
    UtilitySession session(&cache_, pool_.get());
    Result<ValuationResult> exact = ExactShapleyMc(session);
    FEDSHAP_CHECK_OK(exact.status());
    ground_truth_ = exact->values;
    ground_truth_seconds_ = session.charged_seconds();
  }
  return *ground_truth_;
}

double ScenarioRunner::MeanTrainingCost() const {
  const size_t entries = cache_.size();
  if (entries == 0) return 0.0;
  // Recorded costs, not this-process compute time: a store-warmed run
  // still knows what each of its utilities originally cost to train.
  return cache_.recorded_cost_seconds() / static_cast<double>(entries);
}

Result<AlgoRun> ScenarioRunner::Run(Algo algo, int gamma, uint64_t seed) {
  AlgoRun run;
  switch (algo) {
    case Algo::kPermShapley: {
      // Report the extrapolated cost of enumerating n! permutations, like
      // the paper's 10^6..10^9-second entries; values = ground truth.
      run.exact = true;
      run.estimated_time = true;
      run.result.values = GroundTruth();
      run.result.charged_seconds =
          EstimatePermShapleySeconds(n(), MeanTrainingCost());
      run.result.num_trainings = static_cast<size_t>(
          std::min<double>(1e18, std::exp(LogFactorial(n())) * n()));
      return run;
    }
    case Algo::kMcShapley: {
      UtilitySession session(&cache_, pool_.get());
      FEDSHAP_ASSIGN_OR_RETURN(run.result, ExactShapleyMc(session));
      run.exact = true;
      return run;
    }
    case Algo::kDigFl: {
      FEDSHAP_ASSIGN_OR_RETURN(ReconstructionContext * context,
                               GetContext());
      FEDSHAP_ASSIGN_OR_RETURN(run.result, DigFlShapley(*context));
      return run;
    }
    case Algo::kExtTmc: {
      UtilitySession session(&cache_, pool_.get());
      ExtendedTmcConfig config;
      config.permutations = gamma;
      config.seed = seed;
      FEDSHAP_ASSIGN_OR_RETURN(run.result,
                               ExtendedTmcShapley(session, config));
      return run;
    }
    case Algo::kExtGtb: {
      UtilitySession session(&cache_, pool_.get());
      ExtendedGtbConfig config;
      config.samples = gamma;
      config.seed = seed;
      FEDSHAP_ASSIGN_OR_RETURN(run.result,
                               ExtendedGtbShapley(session, config));
      return run;
    }
    case Algo::kCcShapley: {
      UtilitySession session(&cache_, pool_.get());
      CcShapleyConfig config;
      config.rounds = gamma;
      config.seed = seed;
      FEDSHAP_ASSIGN_OR_RETURN(run.result, CcShapley(session, config));
      return run;
    }
    case Algo::kGtgShapley: {
      FEDSHAP_ASSIGN_OR_RETURN(ReconstructionContext * context,
                               GetContext());
      GtgShapleyConfig config;
      config.max_permutations_per_round = std::max(2, gamma / 4);
      config.seed = seed;
      FEDSHAP_ASSIGN_OR_RETURN(run.result, GtgShapley(*context, config));
      return run;
    }
    case Algo::kOr: {
      FEDSHAP_ASSIGN_OR_RETURN(ReconstructionContext * context,
                               GetContext());
      FEDSHAP_ASSIGN_OR_RETURN(run.result, OrShapley(*context));
      return run;
    }
    case Algo::kLambdaMr: {
      FEDSHAP_ASSIGN_OR_RETURN(ReconstructionContext * context,
                               GetContext());
      LambdaMrConfig config;
      FEDSHAP_ASSIGN_OR_RETURN(run.result,
                               LambdaMrShapley(*context, config));
      return run;
    }
    case Algo::kIpss: {
      UtilitySession session(&cache_, pool_.get());
      IpssConfig config;
      config.total_rounds = gamma;
      config.seed = seed;
      FEDSHAP_ASSIGN_OR_RETURN(run.result, IpssShapley(session, config));
      return run;
    }
  }
  return Status::InvalidArgument("unknown algorithm");
}

std::string TimeCell(const AlgoRun& run) {
  if (!run.applicable) return "\\";
  std::string cell = FormatSeconds(run.result.charged_seconds);
  if (run.estimated_time) cell = "~" + cell;
  return cell;
}

std::string ErrorCell(const AlgoRun& run,
                      const std::vector<double>& exact) {
  if (!run.applicable) return "\\";
  if (run.exact) return "-";
  return FormatDouble(RelativeL2Error(exact, run.result.values), 4);
}

}  // namespace bench
}  // namespace fedshap
