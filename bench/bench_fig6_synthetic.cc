/// Reproduces Fig. 6: time and approximation error of all algorithms on the
/// five synthetic FL setups (a)-(e), varying dataset size, distribution and
/// quality, with ten clients and both MLP and CNN models.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader("Fig. 6: synthetic setups (a)-(e), n=10", options);

  const PartitionScheme schemes[] = {
      PartitionScheme::kSameSizeSameDist,
      PartitionScheme::kSameSizeDiffDist,
      PartitionScheme::kDiffSizeSameDist,
      PartitionScheme::kSameSizeNoisyLabel,
      PartitionScheme::kSameSizeNoisyFeature,
  };
  const char* labels[] = {"(a)", "(b)", "(c)", "(d)", "(e)"};

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    for (int s = 0; s < 5; ++s) {
      ScenarioRunner runner(
          MakeSyntheticScenario(schemes[s], 10, kind, options),
          options);
      const std::vector<double>& exact = runner.GroundTruth();
      const int gamma = PaperGamma(10);

      ConsoleTable table({"algorithm", "time", "error(l2)"});
      for (Algo algo : AllAlgos()) {
        if (algo == Algo::kPermShapley) continue;  // off-scale, see Table IV
        Result<AlgoRun> run = runner.Run(algo, gamma, options.seed + s);
        if (!run.ok()) {
          std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                       run.status().ToString().c_str());
          return 1;
        }
        table.AddRow(
            {AlgoName(algo), TimeCell(*run), ErrorCell(*run, exact)});
      }
      std::printf("--- %s %s ---\n", labels[s],
                  runner.description().c_str());
      table.Print(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}
