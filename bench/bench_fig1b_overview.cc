/// Reproduces Fig. 1(b): the motivating effectiveness-vs-efficiency
/// scatter on the FEMNIST-style workload with ten FL clients. Each
/// algorithm is one point (time, error); the paper's claim is that only
/// IPSS sits in the "fast AND accurate" corner.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader("Fig. 1(b): error vs time, FEMNIST-like, n=10, MLP",
                 options);

  ScenarioRunner runner(
      MakeFemnistScenario(10, ModelKind::kMlp, options), options);
  const std::vector<double>& exact = runner.GroundTruth();
  const int gamma = PaperGamma(10);

  ConsoleTable table({"algorithm", "time", "error(l2)", "verdict"});
  for (Algo algo : AllAlgos()) {
    if (algo == Algo::kPermShapley || algo == Algo::kMcShapley) {
      continue;  // exact methods anchor the axes but are off-scale
    }
    Result<AlgoRun> run = runner.Run(algo, gamma, options.seed);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                   run.status().ToString().c_str());
      return 1;
    }
    const double error = RelativeL2Error(exact, run->result.values);
    const double time = run->result.charged_seconds;
    const char* verdict = (error < 0.3 && time < 2.0)
                              ? "fast + accurate"
                              : (error < 0.3 ? "accurate" : "fast");
    table.AddRow({AlgoName(algo), TimeCell(*run), FormatDouble(error, 4),
                  verdict});
  }
  std::printf("gamma=%d, exact ground truth over 1024 coalitions "
              "(tau=%s/model)\n",
              gamma, FormatSeconds(runner.MeanTrainingCost()).c_str());
  table.Print(std::cout);
  return 0;
}
