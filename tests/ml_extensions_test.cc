/// Tests for the ML-side extensions: the FedProx proximal term in SGD and
/// model parameter serialization.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/fedavg.h"
#include "ml/cnn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "ml/metrics.h"
#include "ml/serialization.h"
#include "ml/sgd.h"

namespace fedshap {
namespace {

double ParamDistance(const std::vector<float>& a,
                     const std::vector<float>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

TEST(FedProxTest, ProximalTermLimitsDrift) {
  // Larger mu keeps the locally trained parameters closer to the starting
  // (global) parameters — FedProx's defining behaviour.
  Rng rng(1);
  Result<Dataset> data = GenerateBlobs(2, 4, 5.0, 300, rng);
  ASSERT_TRUE(data.ok());

  auto drift_for = [&](double mu) {
    LogisticRegression model(4, 2);
    Rng init(2);
    model.InitializeParameters(init);
    const std::vector<float> start = model.GetParameters();
    SgdConfig config;
    config.epochs = 10;
    config.learning_rate = 0.3;
    config.proximal_mu = mu;
    Rng train_rng(3);
    EXPECT_TRUE(TrainSgd(model, *data, config, train_rng).ok());
    return ParamDistance(start, model.GetParameters());
  };

  // The equilibrium drift |grad(w*)|/mu is not monotone in mu (it depends
  // on where the proximal equilibrium lands on the loss surface), but any
  // stable proximal term must drift less than unconstrained SGD.
  const double drift_plain = drift_for(0.0);
  EXPECT_GT(drift_plain, drift_for(0.5));
  EXPECT_GT(drift_plain, drift_for(2.0));
}

TEST(FedProxTest, StillLearns) {
  Rng rng(4);
  Result<Dataset> data = GenerateBlobs(2, 4, 5.0, 400, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression model(4, 2);
  Rng init(5);
  model.InitializeParameters(init);
  const double initial_loss = model.Loss(*data);
  SgdConfig config;
  config.epochs = 10;
  config.learning_rate = 0.3;
  config.proximal_mu = 0.1;
  Rng train_rng(6);
  ASSERT_TRUE(TrainSgd(model, *data, config, train_rng).ok());
  EXPECT_LT(model.Loss(*data), initial_loss * 0.7);
}

TEST(FedProxTest, RejectsNegativeMu) {
  Rng rng(7);
  Result<Dataset> data = GenerateBlobs(2, 3, 4.0, 50, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression model(3, 2);
  SgdConfig config;
  config.proximal_mu = -0.1;
  Rng train_rng(8);
  EXPECT_FALSE(TrainSgd(model, *data, config, train_rng).ok());
}

TEST(FedProxTest, ReducesClientDriftInFederatedTraining) {
  // Heterogeneous (label-skewed) federation: FedProx local updates stay
  // closer to the global model than plain FedAvg updates.
  Rng rng(9);
  Result<Dataset> pool = GenerateBlobs(4, 6, 4.0, 1200, rng);
  ASSERT_TRUE(pool.ok());
  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeDiffDist;
  part.num_clients = 4;
  part.label_skew = 0.8;
  Result<std::vector<Dataset>> clients = PartitionDataset(*pool, part, rng);
  ASSERT_TRUE(clients.ok());

  LogisticRegression prototype(6, 4);
  Rng init(10);
  prototype.InitializeParameters(init);
  const std::vector<float> global = prototype.GetParameters();

  auto mean_local_drift = [&](double mu) {
    double total = 0.0;
    for (int i = 0; i < 4; ++i) {
      FlClient client(i, (*clients)[i]);
      LogisticRegression scratch(6, 4);
      SgdConfig local;
      local.epochs = 3;
      local.learning_rate = 0.3;
      local.proximal_mu = mu;
      Rng update_rng(20 + i);
      Result<std::vector<float>> updated =
          client.LocalUpdate(global, scratch, local, update_rng);
      EXPECT_TRUE(updated.ok());
      total += ParamDistance(global, *updated);
    }
    return total / 4;
  };
  EXPECT_GT(mean_local_drift(0.0), mean_local_drift(1.0));
}

class SerializationSuite : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Model> MakeModel() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<LinearRegression>(6);
      case 1:
        return std::make_unique<LogisticRegression>(6, 3);
      case 2:
        return std::make_unique<Mlp>(6, 5, 3);
      case 3:
        return std::make_unique<Cnn>(8, 2, 3);
    }
    return nullptr;
  }
  std::string TempPath() const {
    return ::testing::TempDir() + "/fedshap_model_" +
           std::to_string(GetParam()) + ".txt";
  }
};

TEST_P(SerializationSuite, RoundTripsBitExactly) {
  std::unique_ptr<Model> model = MakeModel();
  Rng rng(11 + GetParam());
  model->InitializeParameters(rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveModelParameters(path, *model).ok());

  std::unique_ptr<Model> restored = MakeModel();
  ASSERT_TRUE(LoadModelParameters(path, *restored).ok());
  EXPECT_EQ(restored->GetParameters(), model->GetParameters());
  std::remove(path.c_str());
}

TEST_P(SerializationSuite, RejectsArchitectureMismatch) {
  std::unique_ptr<Model> model = MakeModel();
  Rng rng(17);
  model->InitializeParameters(rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveModelParameters(path, *model).ok());

  LinearRegression other(99);
  EXPECT_FALSE(LoadModelParameters(path, other).ok());
  std::remove(path.c_str());
}

std::string SerializationCaseName(
    const ::testing::TestParamInfo<int>& info) {
  static constexpr const char* kNames[] = {"linreg", "logreg", "mlp",
                                           "cnn"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllModels, SerializationSuite,
                         ::testing::Range(0, 4), SerializationCaseName);

TEST(SerializationTest, MissingFileAndGarbage) {
  LinearRegression model(3);
  EXPECT_EQ(
      LoadModelParameters("/nonexistent/nope.txt", model).code(),
      StatusCode::kNotFound);

  const std::string path = ::testing::TempDir() + "/fedshap_garbage.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a model file\n", f);
  std::fclose(f);
  EXPECT_EQ(LoadModelParameters(path, model).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileRejected) {
  LinearRegression model(4);
  Rng rng(19);
  model.InitializeParameters(rng);
  const std::string path = ::testing::TempDir() + "/fedshap_truncated.txt";
  ASSERT_TRUE(SaveModelParameters(path, model).ok());
  // Chop the file roughly in half.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  ASSERT_EQ(0, ftruncate(fileno(f), size / 2));
  std::fclose(f);
  EXPECT_FALSE(LoadModelParameters(path, model).ok());
  std::remove(path.c_str());
}

TEST(FedAvgWithProxTest, EndToEndTrainingWorks) {
  Rng rng(21);
  Result<Dataset> pool = GenerateBlobs(3, 5, 5.0, 900, rng);
  ASSERT_TRUE(pool.ok());
  auto [train, test] = pool->Split(0.7, rng);
  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeDiffDist;
  part.num_clients = 3;
  Result<std::vector<Dataset>> shards = PartitionDataset(train, part, rng);
  ASSERT_TRUE(shards.ok());
  std::vector<FlClient> clients;
  for (int i = 0; i < 3; ++i) clients.emplace_back(i, (*shards)[i]);

  LogisticRegression prototype(5, 3);
  Rng init(22);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 5;
  config.local.epochs = 2;
  config.local.learning_rate = 0.3;
  config.local.proximal_mu = 0.5;  // FedProx
  Result<std::unique_ptr<Model>> model = TrainFedAvg(
      prototype, {&clients[0], &clients[1], &clients[2]}, config);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateAccuracy(**model, test), 0.8);
}

}  // namespace
}  // namespace fedshap
