#include "util/coalition.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(CoalitionTest, DefaultIsEmpty) {
  Coalition c;
  EXPECT_TRUE(c.Empty());
  EXPECT_EQ(c.Count(), 0);
  EXPECT_EQ(c.ToString(), "{}");
}

TEST(CoalitionTest, AddRemoveContains) {
  Coalition c;
  c.Add(3);
  c.Add(100);
  EXPECT_TRUE(c.Contains(3));
  EXPECT_TRUE(c.Contains(100));
  EXPECT_FALSE(c.Contains(4));
  EXPECT_EQ(c.Count(), 2);
  c.Remove(3);
  EXPECT_FALSE(c.Contains(3));
  EXPECT_EQ(c.Count(), 1);
  c.Remove(3);  // removing a non-member is a no-op
  EXPECT_EQ(c.Count(), 1);
}

TEST(CoalitionTest, OfAndFromIndices) {
  Coalition a = Coalition::Of({0, 2, 5});
  Coalition b = Coalition::FromIndices({5, 0, 2});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "{0,2,5}");
}

TEST(CoalitionTest, FullCoalition) {
  for (int n : {0, 1, 7, 64, 65, 130}) {
    Coalition full = Coalition::Full(n);
    EXPECT_EQ(full.Count(), n) << "n=" << n;
    for (int i = 0; i < n; ++i) EXPECT_TRUE(full.Contains(i));
    if (n < Coalition::kMaxClients) {
      EXPECT_FALSE(full.Contains(n));
    }
  }
}

TEST(CoalitionTest, WithWithoutAreNonMutating) {
  const Coalition base = Coalition::Of({1, 2});
  Coalition plus = base.With(4);
  Coalition minus = base.Without(2);
  EXPECT_EQ(base.Count(), 2);
  EXPECT_TRUE(plus.Contains(4));
  EXPECT_EQ(plus.Count(), 3);
  EXPECT_FALSE(minus.Contains(2));
  EXPECT_EQ(minus.Count(), 1);
}

TEST(CoalitionTest, SetAlgebra) {
  Coalition a = Coalition::Of({0, 1, 2});
  Coalition b = Coalition::Of({2, 3});
  EXPECT_EQ(a.Union(b), Coalition::Of({0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), Coalition::Of({2}));
  EXPECT_EQ(a.Minus(b), Coalition::Of({0, 1}));
  EXPECT_EQ(b.Minus(a), Coalition::Of({3}));
}

TEST(CoalitionTest, ComplementIn) {
  Coalition s = Coalition::Of({1, 3});
  Coalition complement = s.ComplementIn(5);
  EXPECT_EQ(complement, Coalition::Of({0, 2, 4}));
  // Complement of complement is the original.
  EXPECT_EQ(complement.ComplementIn(5), s);
  // Complement spanning a word boundary.
  Coalition wide = Coalition::Of({0, 70});
  Coalition wide_c = wide.ComplementIn(72);
  EXPECT_EQ(wide_c.Count(), 70);
  EXPECT_FALSE(wide_c.Contains(0));
  EXPECT_FALSE(wide_c.Contains(70));
  EXPECT_TRUE(wide_c.Contains(71));
}

TEST(CoalitionTest, SubsetRelation) {
  Coalition small = Coalition::Of({1, 2});
  Coalition big = Coalition::Of({0, 1, 2, 3});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(Coalition().IsSubsetOf(small));
}

TEST(CoalitionTest, MembersSortedAcrossWords) {
  Coalition c = Coalition::Of({200, 3, 64, 65, 0});
  std::vector<int> expected = {0, 3, 64, 65, 200};
  EXPECT_EQ(c.Members(), expected);
}

TEST(CoalitionTest, ForEachVisitsAllMembersInOrder) {
  Coalition c = Coalition::Of({7, 1, 130});
  std::vector<int> visited;
  c.ForEach([&](int i) { visited.push_back(i); });
  std::vector<int> expected = {1, 7, 130};
  EXPECT_EQ(visited, expected);
}

TEST(CoalitionTest, EqualityAndOrdering) {
  Coalition a = Coalition::Of({1});
  Coalition b = Coalition::Of({1});
  Coalition c = Coalition::Of({2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(CoalitionTest, HashDistinguishesSets) {
  std::unordered_set<size_t> hashes;
  // All 2^10 subsets of 10 clients should hash mostly distinctly.
  for (uint64_t mask = 0; mask < 1024; ++mask) {
    Coalition c;
    for (int i = 0; i < 10; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    hashes.insert(c.Hash());
  }
  EXPECT_GE(hashes.size(), 1020u);  // allow a few collisions, not many
}

TEST(CoalitionTest, UsableAsUnorderedMapKey) {
  std::unordered_set<Coalition, CoalitionHash> set;
  set.insert(Coalition::Of({1, 2}));
  set.insert(Coalition::Of({2, 1}));  // duplicate
  set.insert(Coalition::Of({1}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Coalition::Of({1, 2})) > 0);
}

TEST(CoalitionTest, HighIndexMembership) {
  Coalition c;
  c.Add(Coalition::kMaxClients - 1);
  EXPECT_TRUE(c.Contains(Coalition::kMaxClients - 1));
  EXPECT_EQ(c.Count(), 1);
}

}  // namespace
}  // namespace fedshap
