/// Property-based suites over the valuation algorithms: the Shapley axioms
/// and cross-algorithm identities are checked on grids of (n, seed, utility
/// family) via parameterized gtest, rather than single hand-picked cases.
/// A second grid runs the axioms against real batched-training FedAvg
/// utilities (not just table utilities) on randomized 4-6 client games.

#include <cmath>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/kgreedy.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "data/synthetic.h"
#include "ml/mlp.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

enum class UtilityFamily { kRandom, kMonotone, kAdditive, kSubmodular };

const char* FamilyName(UtilityFamily family) {
  switch (family) {
    case UtilityFamily::kRandom:
      return "random";
    case UtilityFamily::kMonotone:
      return "monotone";
    case UtilityFamily::kAdditive:
      return "additive";
    case UtilityFamily::kSubmodular:
      return "submodular";
  }
  return "?";
}

/// Builds a utility of the given family over n clients.
TableUtility MakeUtility(UtilityFamily family, int n, uint64_t seed) {
  switch (family) {
    case UtilityFamily::kRandom:
      return testing_util::RandomTable(n, seed);
    case UtilityFamily::kMonotone:
      return testing_util::MonotoneTable(n);
    case UtilityFamily::kAdditive: {
      // U(S) = sum of fixed per-client weights: SV must equal the weights.
      Rng rng(seed);
      std::vector<double> weights(n);
      for (double& w : weights) w = rng.Uniform(0.0, 1.0);
      Result<TableUtility> table =
          TableUtility::FromFunction(n, [&weights](const Coalition& s) {
            double total = 0.0;
            s.ForEach([&](int i) { total += weights[i]; });
            return total;
          });
      FEDSHAP_CHECK(table.ok());
      return std::move(table).value();
    }
    case UtilityFamily::kSubmodular: {
      // Coverage-style utility: sqrt of summed weights (diminishing
      // returns, monotone).
      Rng rng(seed);
      std::vector<double> weights(n);
      for (double& w : weights) w = rng.Uniform(0.2, 1.0);
      Result<TableUtility> table =
          TableUtility::FromFunction(n, [&weights](const Coalition& s) {
            double total = 0.0;
            s.ForEach([&](int i) { total += weights[i]; });
            return std::sqrt(total);
          });
      FEDSHAP_CHECK(table.ok());
      return std::move(table).value();
    }
  }
  FEDSHAP_CHECK(false);
  return testing_util::RandomTable(2, 1);
}

using PropertyParam = std::tuple<int, uint64_t, UtilityFamily>;

class ShapleyProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  int n() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
  UtilityFamily family() const { return std::get<2>(GetParam()); }
};

TEST_P(ShapleyProperties, SchemesAgree) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession mc_session(&cache), cc_session(&cache);
  Result<ValuationResult> mc = ExactShapleyMc(mc_session);
  Result<ValuationResult> cc = ExactShapleyCc(cc_session);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(mc->values, cc->values), 1e-9);
}

TEST_P(ShapleyProperties, EfficiencyAxiom) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  const double u_full = table.Evaluate(Coalition::Full(n())).value();
  const double u_empty = table.Evaluate(Coalition()).value();
  EXPECT_NEAR(EfficiencyResidual(exact->values, u_full, u_empty), 0.0,
              1e-9);
}

TEST_P(ShapleyProperties, AdditiveUtilityGivesWeightsBack) {
  if (family() != UtilityFamily::kAdditive) GTEST_SKIP();
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  // For additive games phi_i = U({i}) exactly.
  for (int i = 0; i < n(); ++i) {
    const double weight = table.Evaluate(Coalition::Of({i})).value();
    EXPECT_NEAR(exact->values[i], weight, 1e-10);
  }
}

TEST_P(ShapleyProperties, MonotoneUtilityGivesNonNegativeValues) {
  if (family() == UtilityFamily::kRandom) GTEST_SKIP();
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  for (double v : exact->values) EXPECT_GE(v, -1e-12);
}

TEST_P(ShapleyProperties, IpssExactAtFullBudget) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession ipss_session(&cache), exact_session(&cache);
  IpssConfig config;
  config.total_rounds = 1 << n();
  config.seed = seed();
  Result<ValuationResult> ipss = IpssShapley(ipss_session, config);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(ipss.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(ipss->values, exact->values), 1e-9);
}

TEST_P(ShapleyProperties, IpssNeverExceedsBudget) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  for (int gamma : {1, 3, 7, 15}) {
    UtilitySession session(&cache);
    IpssConfig config;
    config.total_rounds = gamma;
    config.seed = seed();
    Result<ValuationResult> ipss = IpssShapley(session, config);
    ASSERT_TRUE(ipss.ok());
    EXPECT_LE(ipss->num_trainings, static_cast<size_t>(gamma))
        << "gamma=" << gamma;
  }
}

TEST_P(ShapleyProperties, KGreedyAtKnIsExact) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession kg_session(&cache), exact_session(&cache);
  Result<ValuationResult> kg = KGreedyShapley(kg_session, n());
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(kg.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(kg->values, exact->values), 1e-9);
}

TEST_P(ShapleyProperties, StratifiedFullSamplingIsExact) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  StratifiedConfig config;
  for (int k = 1; k <= n(); ++k) {
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n(), k)) * 40);
  }
  config.seed = seed() + 7;
  UtilitySession session(&cache), exact_session(&cache);
  Result<ValuationResult> stratified =
      StratifiedSamplingShapley(session, config);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(stratified.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(stratified->values, exact->values),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapleyProperties,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7),
                       ::testing::Values<uint64_t>(1, 17, 4242),
                       ::testing::Values(UtilityFamily::kRandom,
                                         UtilityFamily::kMonotone,
                                         UtilityFamily::kAdditive,
                                         UtilityFamily::kSubmodular)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             FamilyName(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Shapley axioms against the *batched-training* utility: randomized 4-6
// client games where every U(S) is a real FedAvg training through the
// batched kernel path (the default), not a table lookup. These pin the
// axioms where they can actually break: seed mixing, null-client
// exclusion, batching, aggregation.

/// Builds a FedAvg utility over n tiny clients. `null_client` (when >= 0)
/// gets an empty dataset; `twin_of` (when >= 0) makes client 1 share
/// client 0's exact dataset.
std::unique_ptr<FedAvgUtility> MakeFedAvgGame(int n, uint64_t seed,
                                              int null_client = -1,
                                              bool twin_clients = false) {
  Rng rng(seed);
  Result<Dataset> pool = GenerateBlobs(3, 5, 3.0, 16 * n + 32, rng);
  FEDSHAP_CHECK(pool.ok());
  std::vector<Dataset> clients;
  for (int c = 0; c < n; ++c) {
    std::vector<size_t> idx;
    for (size_t i = c * 16; i < static_cast<size_t>(c + 1) * 16; ++i) {
      idx.push_back(i);
    }
    clients.push_back(pool->Subset(idx));
  }
  if (twin_clients && n >= 2) clients[1] = clients[0];
  if (null_client >= 0 && null_client < n) {
    Result<Dataset> empty =
        Dataset::Create(pool->num_features(), pool->num_classes());
    FEDSHAP_CHECK(empty.ok());
    clients[null_client] = std::move(empty).value();
  }
  std::vector<size_t> test_idx;
  for (size_t i = 16 * n; i < pool->size(); ++i) test_idx.push_back(i);
  Dataset test = pool->Subset(test_idx);

  Mlp prototype(5, 4, 3);
  Rng init(seed + 1);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 2;
  config.local.epochs = 1;
  config.local.batch_size = 8;
  config.local.learning_rate = 0.2;
  config.seed = seed + 2;
  Result<std::unique_ptr<FedAvgUtility>> fn = FedAvgUtility::Create(
      std::move(clients), std::move(test), prototype, config,
      UtilityMetric::kNegativeLoss);
  FEDSHAP_CHECK(fn.ok());
  return std::move(fn).value();
}

using FedAvgAxiomParam = std::tuple<int, uint64_t>;

class FedAvgAxioms : public ::testing::TestWithParam<FedAvgAxiomParam> {
 protected:
  int n() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(FedAvgAxioms, Efficiency) {
  std::unique_ptr<FedAvgUtility> fn = MakeFedAvgGame(n(), seed());
  UtilityCache cache(fn.get());
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  const double u_full = fn->Evaluate(Coalition::Full(n())).value();
  const double u_empty = fn->Evaluate(Coalition()).value();
  EXPECT_NEAR(EfficiencyResidual(exact->values, u_full, u_empty), 0.0,
              1e-9);
}

TEST_P(FedAvgAxioms, DummyPlayerGetsExactlyZero) {
  // A client with no data is excluded from both training and seed mixing,
  // so U(S u {d}) == U(S) bit for bit and its exact SV is exactly zero.
  const int dummy = n() - 1;
  std::unique_ptr<FedAvgUtility> fn = MakeFedAvgGame(n(), seed(), dummy);
  UtilityCache cache(fn.get());
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->values[dummy], 0.0, 1e-15);
  // And some non-dummy client must matter.
  double max_abs = 0.0;
  for (double v : exact->values) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_GT(max_abs, 0.0);
}

TEST_P(FedAvgAxioms, SymmetryForTwinClients) {
  // Clients 0 and 1 hold the exact same dataset. FedAvg's per-coalition
  // seed mixing is id-dependent by design (each coalition is an
  // independent seeded training run), so their utilities — and hence
  // their exact SVs — agree only up to local-SGD shuffle noise, not
  // bitwise. The bound here is far below the value spread between
  // genuinely different clients on these games (~1e-1).
  std::unique_ptr<FedAvgUtility> fn =
      MakeFedAvgGame(n(), seed(), /*null_client=*/-1, /*twin_clients=*/true);
  UtilityCache cache(fn.get());
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact->values[0], exact->values[1], 0.05);
}

/// U1 + U2 as one utility: the additivity axiom says SV(U1 + U2) =
/// SV(U1) + SV(U2). Exercised with two independently seeded FedAvg games
/// over the same client set.
class SumUtility : public UtilityFunction {
 public:
  SumUtility(const UtilityFunction* u1, const UtilityFunction* u2)
      : u1_(u1), u2_(u2) {}
  int num_clients() const override { return u1_->num_clients(); }
  Result<double> Evaluate(const Coalition& coalition) const override {
    FEDSHAP_ASSIGN_OR_RETURN(double a, u1_->Evaluate(coalition));
    FEDSHAP_ASSIGN_OR_RETURN(double b, u2_->Evaluate(coalition));
    return a + b;
  }

 private:
  const UtilityFunction* u1_;
  const UtilityFunction* u2_;
};

TEST_P(FedAvgAxioms, Additivity) {
  std::unique_ptr<FedAvgUtility> u1 = MakeFedAvgGame(n(), seed());
  std::unique_ptr<FedAvgUtility> u2 = MakeFedAvgGame(n(), seed() + 1000);
  SumUtility sum(u1.get(), u2.get());

  UtilityCache cache1(u1.get()), cache2(u2.get()), cache_sum(&sum);
  UtilitySession s1(&cache1), s2(&cache2), s_sum(&cache_sum);
  Result<ValuationResult> sv1 = ExactShapleyMc(s1);
  Result<ValuationResult> sv2 = ExactShapleyMc(s2);
  Result<ValuationResult> sv_sum = ExactShapleyMc(s_sum);
  ASSERT_TRUE(sv1.ok());
  ASSERT_TRUE(sv2.ok());
  ASSERT_TRUE(sv_sum.ok());
  for (int i = 0; i < n(); ++i) {
    EXPECT_NEAR(sv_sum->values[i], sv1->values[i] + sv2->values[i], 1e-9)
        << "client " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FedAvgAxioms,
    ::testing::Combine(::testing::Values(4, 5, 6),
                       ::testing::Values<uint64_t>(3, 71)),
    [](const ::testing::TestParamInfo<FedAvgAxiomParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fedshap
