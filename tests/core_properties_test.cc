/// Property-based suites over the valuation algorithms: the Shapley axioms
/// and cross-algorithm identities are checked on grids of (n, seed, utility
/// family) via parameterized gtest, rather than single hand-picked cases.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/kgreedy.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

enum class UtilityFamily { kRandom, kMonotone, kAdditive, kSubmodular };

const char* FamilyName(UtilityFamily family) {
  switch (family) {
    case UtilityFamily::kRandom:
      return "random";
    case UtilityFamily::kMonotone:
      return "monotone";
    case UtilityFamily::kAdditive:
      return "additive";
    case UtilityFamily::kSubmodular:
      return "submodular";
  }
  return "?";
}

/// Builds a utility of the given family over n clients.
TableUtility MakeUtility(UtilityFamily family, int n, uint64_t seed) {
  switch (family) {
    case UtilityFamily::kRandom:
      return testing_util::RandomTable(n, seed);
    case UtilityFamily::kMonotone:
      return testing_util::MonotoneTable(n);
    case UtilityFamily::kAdditive: {
      // U(S) = sum of fixed per-client weights: SV must equal the weights.
      Rng rng(seed);
      std::vector<double> weights(n);
      for (double& w : weights) w = rng.Uniform(0.0, 1.0);
      Result<TableUtility> table =
          TableUtility::FromFunction(n, [&weights](const Coalition& s) {
            double total = 0.0;
            s.ForEach([&](int i) { total += weights[i]; });
            return total;
          });
      FEDSHAP_CHECK(table.ok());
      return std::move(table).value();
    }
    case UtilityFamily::kSubmodular: {
      // Coverage-style utility: sqrt of summed weights (diminishing
      // returns, monotone).
      Rng rng(seed);
      std::vector<double> weights(n);
      for (double& w : weights) w = rng.Uniform(0.2, 1.0);
      Result<TableUtility> table =
          TableUtility::FromFunction(n, [&weights](const Coalition& s) {
            double total = 0.0;
            s.ForEach([&](int i) { total += weights[i]; });
            return std::sqrt(total);
          });
      FEDSHAP_CHECK(table.ok());
      return std::move(table).value();
    }
  }
  FEDSHAP_CHECK(false);
  return testing_util::RandomTable(2, 1);
}

using PropertyParam = std::tuple<int, uint64_t, UtilityFamily>;

class ShapleyProperties : public ::testing::TestWithParam<PropertyParam> {
 protected:
  int n() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
  UtilityFamily family() const { return std::get<2>(GetParam()); }
};

TEST_P(ShapleyProperties, SchemesAgree) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession mc_session(&cache), cc_session(&cache);
  Result<ValuationResult> mc = ExactShapleyMc(mc_session);
  Result<ValuationResult> cc = ExactShapleyCc(cc_session);
  ASSERT_TRUE(mc.ok());
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(mc->values, cc->values), 1e-9);
}

TEST_P(ShapleyProperties, EfficiencyAxiom) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  const double u_full = table.Evaluate(Coalition::Full(n())).value();
  const double u_empty = table.Evaluate(Coalition()).value();
  EXPECT_NEAR(EfficiencyResidual(exact->values, u_full, u_empty), 0.0,
              1e-9);
}

TEST_P(ShapleyProperties, AdditiveUtilityGivesWeightsBack) {
  if (family() != UtilityFamily::kAdditive) GTEST_SKIP();
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  // For additive games phi_i = U({i}) exactly.
  for (int i = 0; i < n(); ++i) {
    const double weight = table.Evaluate(Coalition::Of({i})).value();
    EXPECT_NEAR(exact->values[i], weight, 1e-10);
  }
}

TEST_P(ShapleyProperties, MonotoneUtilityGivesNonNegativeValues) {
  if (family() == UtilityFamily::kRandom) GTEST_SKIP();
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  for (double v : exact->values) EXPECT_GE(v, -1e-12);
}

TEST_P(ShapleyProperties, IpssExactAtFullBudget) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession ipss_session(&cache), exact_session(&cache);
  IpssConfig config;
  config.total_rounds = 1 << n();
  config.seed = seed();
  Result<ValuationResult> ipss = IpssShapley(ipss_session, config);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(ipss.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(ipss->values, exact->values), 1e-9);
}

TEST_P(ShapleyProperties, IpssNeverExceedsBudget) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  for (int gamma : {1, 3, 7, 15}) {
    UtilitySession session(&cache);
    IpssConfig config;
    config.total_rounds = gamma;
    config.seed = seed();
    Result<ValuationResult> ipss = IpssShapley(session, config);
    ASSERT_TRUE(ipss.ok());
    EXPECT_LE(ipss->num_trainings, static_cast<size_t>(gamma))
        << "gamma=" << gamma;
  }
}

TEST_P(ShapleyProperties, KGreedyAtKnIsExact) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  UtilitySession kg_session(&cache), exact_session(&cache);
  Result<ValuationResult> kg = KGreedyShapley(kg_session, n());
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(kg.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(kg->values, exact->values), 1e-9);
}

TEST_P(ShapleyProperties, StratifiedFullSamplingIsExact) {
  TableUtility table = MakeUtility(family(), n(), seed());
  UtilityCache cache(&table);
  StratifiedConfig config;
  for (int k = 1; k <= n(); ++k) {
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n(), k)) * 40);
  }
  config.seed = seed() + 7;
  UtilitySession session(&cache), exact_session(&cache);
  Result<ValuationResult> stratified =
      StratifiedSamplingShapley(session, config);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(stratified.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(stratified->values, exact->values),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShapleyProperties,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7),
                       ::testing::Values<uint64_t>(1, 17, 4242),
                       ::testing::Values(UtilityFamily::kRandom,
                                         UtilityFamily::kMonotone,
                                         UtilityFamily::kAdditive,
                                         UtilityFamily::kSubmodular)),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param)) + "_" +
             FamilyName(std::get<2>(info.param));
    });

}  // namespace
}  // namespace fedshap
