#ifndef FEDSHAP_TESTS_CLUSTER_FIXTURE_H_
#define FEDSHAP_TESTS_CLUSTER_FIXTURE_H_

// Test sugar over LocalCluster + ValuationService: one object that
// stands up a coordinator service with N sharded workers (threads by
// default, fork()ed subprocesses on request), runs job specs through
// it, and tears everything down in the right order (service before
// cluster — the dispatcher must outlive the service that evaluates
// through it). The fault-injection suites pass per-worker
// FaultInjector specs straight through to LocalClusterOptions.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/valuation_result.h"
#include "service/cluster.h"
#include "service/cluster_worker.h"
#include "service/job_spec.h"
#include "service/valuation_service.h"

namespace fedshap {

class ClusterFixture {
 public:
  struct Options {
    int num_workers = 2;
    bool fork_workers = false;
    /// kSocketPair or kTcp: the same suites run over both transports —
    /// the framed protocol is transport-agnostic, and the tests prove it.
    ClusterTransport transport = ClusterTransport::kSocketPair;
    int service_workers = 1;
    std::string state_dir;   ///< Coordinator state dir ("" = in-memory).
    std::string store_dir;   ///< Worker store tier root ("" = memory).
    /// Per-worker fault specs, FaultInjector::Parse syntax.
    std::vector<std::string> fault_specs;
    /// Dispatcher knobs; heartbeat kept tight so worker-death tests
    /// converge in milliseconds instead of the production 10s.
    int heartbeat_timeout_ms = 2000;
    int task_retry_ms = 0;
    int rpc_deadline_ms = 0;
    int max_task_attempts = 5;
    int breaker_trip_threshold = 3;
    int breaker_cooldown_ms = 1000;
    int degraded_grace_ms = 0;
    /// TCP reconnect schedule (kTcp only); tight so partition tests heal
    /// in milliseconds.
    int reconnect_base_ms = 25;
    int reconnect_cap_ms = 400;
    size_t max_slices = 0;  ///< Service halt hook (coordinator-kill tests).
  };

  static std::unique_ptr<ClusterFixture> Start(const Options& options) {
    LocalClusterOptions cluster_options;
    cluster_options.num_workers = options.num_workers;
    cluster_options.fork_workers = options.fork_workers;
    cluster_options.transport = options.transport;
    cluster_options.store_dir = options.store_dir;
    cluster_options.fault_specs = options.fault_specs;
    cluster_options.reconnect_base_ms = options.reconnect_base_ms;
    cluster_options.reconnect_cap_ms = options.reconnect_cap_ms;
    cluster_options.dispatcher.heartbeat_timeout_ms =
        options.heartbeat_timeout_ms;
    cluster_options.dispatcher.task_retry_ms = options.task_retry_ms;
    cluster_options.dispatcher.rpc_deadline_ms = options.rpc_deadline_ms;
    cluster_options.dispatcher.max_task_attempts = options.max_task_attempts;
    cluster_options.dispatcher.breaker_trip_threshold =
        options.breaker_trip_threshold;
    cluster_options.dispatcher.breaker_cooldown_ms =
        options.breaker_cooldown_ms;
    cluster_options.dispatcher.degraded_grace_ms = options.degraded_grace_ms;
    Result<std::unique_ptr<LocalCluster>> cluster =
        LocalCluster::Start(cluster_options);
    EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
    if (!cluster.ok()) return nullptr;

    auto fixture = std::unique_ptr<ClusterFixture>(new ClusterFixture());
    fixture->cluster_ = std::move(cluster).value();
    ServiceConfig config;
    config.workers = options.service_workers;
    config.state_dir = options.state_dir;
    config.max_slices = options.max_slices;
    config.cluster = fixture->cluster_->dispatcher();
    fixture->service_ = std::make_unique<ValuationService>(config);
    return fixture;
  }

  ~ClusterFixture() {
    service_.reset();  // joins service workers before the dispatcher dies
    if (cluster_ != nullptr) cluster_->Shutdown();
  }

  ValuationService& service() { return *service_; }
  LocalCluster& cluster() { return *cluster_; }
  ClusterStats cluster_stats() const { return cluster_->dispatcher()->stats(); }

  void KillWorker(int index) { cluster_->KillWorker(index); }

  /// Submits `spec` and blocks for its result.
  Result<ValuationResult> Run(const JobSpec& spec) {
    Status submitted = service_->Submit(spec);
    if (!submitted.ok()) return submitted;
    return service_->Wait(spec.name);
  }

 private:
  ClusterFixture() = default;

  std::unique_ptr<LocalCluster> cluster_;
  std::unique_ptr<ValuationService> service_;
};

/// Asserts two results carry bit-identical values and exact matching
/// training accounting — the cluster invariance the harness exists to
/// check. (Plain function, not a macro: gtest failure locations point
/// here, the message names the topology under test.)
inline void ExpectBitIdentical(const ValuationResult& reference,
                               const ValuationResult& actual,
                               const std::string& topology) {
  ASSERT_EQ(reference.values.size(), actual.values.size()) << topology;
  for (size_t i = 0; i < reference.values.size(); ++i) {
    // Bitwise: EXPECT_EQ on doubles, not EXPECT_DOUBLE_EQ.
    EXPECT_EQ(reference.values[i], actual.values[i])
        << topology << ": client " << i;
  }
  EXPECT_EQ(reference.num_evaluations, actual.num_evaluations) << topology;
  EXPECT_EQ(reference.num_trainings, actual.num_trainings) << topology;
  EXPECT_EQ(reference.num_fresh_trainings, actual.num_fresh_trainings)
      << topology;
}

}  // namespace fedshap

#endif  // FEDSHAP_TESTS_CLUSTER_FIXTURE_H_
