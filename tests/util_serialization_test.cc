/// Tests for util/serialization.h: byte-codec round-trips (fixed-width,
/// varint, double, string), CRC behavior, framed encode/decode error
/// paths, the content hasher, and atomic file IO.

#include "util/serialization.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fedshap_ser_" + name;
}

TEST(ByteCodecTest, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.PutU8(0xab);
  writer.PutU32(0xdeadbeefu);
  writer.PutU64(0x0123456789abcdefULL);
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU8().value(), 0xab);
  EXPECT_EQ(reader.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, VarintRoundTripEdgeValues) {
  const std::vector<uint64_t> values = {
      0,    1,    127,  128,   129,   16383, 16384,
      1ULL << 32, (1ULL << 56) - 1, std::numeric_limits<uint64_t>::max()};
  ByteWriter writer;
  for (uint64_t v : values) writer.PutVarint(v);
  ByteReader reader(writer.bytes());
  for (uint64_t v : values) {
    Result<uint64_t> read = reader.GetVarint();
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, VarintIsCompactForSmallValues) {
  ByteWriter writer;
  writer.PutVarint(5);
  EXPECT_EQ(writer.size(), 1u);
  writer.PutVarint(300);
  EXPECT_EQ(writer.size(), 3u);  // 1 + 2
}

TEST(ByteCodecTest, DoubleRoundTripIsExact) {
  const std::vector<double> values = {
      0.0, -0.0, 1.0, -1.5, 1e-300, -1e300, M_PI,
      std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min()};
  ByteWriter writer;
  for (double v : values) writer.PutDouble(v);
  writer.PutDouble(std::nan(""));
  ByteReader reader(writer.bytes());
  for (double v : values) {
    Result<double> read = reader.GetDouble();
    ASSERT_TRUE(read.ok());
    // Bit-exact, including the sign of zero.
    EXPECT_EQ(std::signbit(*read), std::signbit(v));
    EXPECT_EQ(*read, v);
  }
  Result<double> read_nan = reader.GetDouble();
  ASSERT_TRUE(read_nan.ok());
  EXPECT_TRUE(std::isnan(*read_nan));
}

TEST(ByteCodecTest, StringRoundTripIncludingEmbeddedNul) {
  ByteWriter writer;
  writer.PutString("");
  writer.PutString(std::string("a\0b", 3));
  writer.PutString(std::string(100000, 'x'));
  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetString().value(), "");
  EXPECT_EQ(reader.GetString().value(), std::string("a\0b", 3));
  EXPECT_EQ(reader.GetString().value(), std::string(100000, 'x'));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteCodecTest, TruncatedReadsFailCleanly) {
  ByteWriter writer;
  writer.PutU32(7);
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(reader.GetU64().ok());  // only 4 bytes available

  ByteWriter partial_string;
  partial_string.PutVarint(100);  // length prefix without the body
  ByteReader sreader(partial_string.bytes());
  Result<std::string> read = sreader.GetString();
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
}

TEST(ByteCodecTest, OverlongVarintRejected) {
  // 11 continuation bytes cannot be a valid 64-bit varint.
  std::string bad(11, static_cast<char>(0x80));
  ByteReader reader(bad);
  EXPECT_FALSE(reader.GetVarint().ok());
}

TEST(Crc32Test, KnownVectorAndSensitivity) {
  // The classic check value of CRC-32/IEEE.
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("fedshap"), Crc32("fedshaq"));
}

TEST(Hasher64Test, DistinguishesOrderAndBoundaries) {
  const uint64_t a = Hasher64().MixString("ab").MixString("c").digest();
  const uint64_t b = Hasher64().MixString("a").MixString("bc").digest();
  EXPECT_NE(a, b);
  const uint64_t x = Hasher64().MixU64(1).MixU64(2).digest();
  const uint64_t y = Hasher64().MixU64(2).MixU64(1).digest();
  EXPECT_NE(x, y);
  EXPECT_NE(Hasher64().MixDouble(0.0).digest(),
            Hasher64().MixDouble(-0.0).digest());
  // Deterministic across instances.
  EXPECT_EQ(Hasher64().MixString("same").digest(),
            Hasher64().MixString("same").digest());
}

TEST(FramedTest, RoundTripAndVersionOut) {
  const std::string frame = EncodeFramed(0x1234u, 3, "payload bytes");
  uint32_t version = 0;
  Result<std::string_view> payload = DecodeFramed(0x1234u, 5, frame,
                                                  &version);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, "payload bytes");
  EXPECT_EQ(version, 3u);
}

TEST(FramedTest, RejectsWrongMagicNewerVersionAndCorruption) {
  const std::string frame = EncodeFramed(0x1234u, 2, "payload");
  EXPECT_EQ(DecodeFramed(0x9999u, 2, frame).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeFramed(0x1234u, 1, frame).status().code(),
            StatusCode::kFailedPrecondition);

  std::string corrupted = frame;
  corrupted.back() ^= 0x01;
  EXPECT_EQ(DecodeFramed(0x1234u, 2, corrupted).status().code(),
            StatusCode::kInvalidArgument);

  std::string truncated = frame.substr(0, frame.size() - 2);
  EXPECT_FALSE(DecodeFramed(0x1234u, 2, truncated).ok());
  EXPECT_FALSE(DecodeFramed(0x1234u, 2, "").ok());
}

TEST(AtomicFileTest, WriteReadRoundTrip) {
  const std::string path = TempPath("roundtrip.bin");
  const std::string contents("binary\0data\xff", 12);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
  std::remove(path.c_str());
}

TEST(AtomicFileTest, OverwriteReplacesAtomically) {
  const std::string path = TempPath("overwrite.bin");
  ASSERT_TRUE(WriteFileAtomic(path, std::string(1000, 'a')).ok());
  ASSERT_TRUE(WriteFileAtomic(path, "short").ok());
  Result<std::string> read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");  // no stale tail from the longer old file
  std::remove(path.c_str());
}

TEST(AtomicFileTest, MissingFileIsNotFound) {
  Result<std::string> read =
      ReadFileToString(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace fedshap
