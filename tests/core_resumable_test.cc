/// Tests for core/resumable.h: snapshot/restore equivalence (a resumed
/// sweep is bit-identical to an uninterrupted one), agreement with the
/// one-shot algorithms, snapshot validation (wrong algorithm / config /
/// corruption), and file-based checkpoint round-trips. Also the run-level
/// determinism contract: same seed + same --threads/--batch-size means a
/// bit-identical ValuationResult across repeated in-process runs, across
/// thread counts, and across a store-warm resume.

#include "core/resumable.h"

#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/ipss.h"
#include "data/synthetic.h"
#include "fl/utility_store.h"
#include "ml/mlp.h"
#include "test_util.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fedshap_resume_" + name;
}

/// Runs `make()`'s sweep start to finish in one process.
ValuationResult RunUninterrupted(
    const UtilityFunction& fn,
    const std::function<std::unique_ptr<ResumableEstimator>()>& make) {
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  std::unique_ptr<ResumableEstimator> sweep = make();
  Result<ValuationResult> result = sweep->Run(session);
  FEDSHAP_CHECK_OK(result.status());
  return std::move(result).value();
}

/// Runs the sweep in chunks of `chunk` units, snapshotting after every
/// step and handing the snapshot to a *fresh* estimator + cache each
/// time — the worst-case resume (no warm cache at all, only the
/// serialized state survives).
ValuationResult RunWithSnapshotsEveryStep(
    const UtilityFunction& fn,
    const std::function<std::unique_ptr<ResumableEstimator>()>& make,
    int chunk) {
  std::string snapshot;
  {
    std::unique_ptr<ResumableEstimator> sweep = make();
    Result<std::string> first = sweep->Snapshot();
    FEDSHAP_CHECK_OK(first.status());
    snapshot = std::move(first).value();
  }
  while (true) {
    std::unique_ptr<ResumableEstimator> sweep = make();
    FEDSHAP_CHECK_OK(sweep->Restore(snapshot));
    if (sweep->done()) {
      UtilityCache cache(&fn);
      UtilitySession session(&cache);
      Result<ValuationResult> result = sweep->Finish(session);
      FEDSHAP_CHECK_OK(result.status());
      return std::move(result).value();
    }
    UtilityCache cache(&fn);
    UtilitySession session(&cache);
    FEDSHAP_CHECK_OK(sweep->Step(session, chunk));
    Result<std::string> next = sweep->Snapshot();
    FEDSHAP_CHECK_OK(next.status());
    snapshot = std::move(next).value();
  }
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ, not NEAR: resumption must not perturb a single bit.
    EXPECT_EQ(a[i], b[i]) << "client " << i;
  }
}

TEST(IpssSweepTest, MatchesOneShotIpss) {
  TableUtility fn = MonotoneTable(6);
  IpssConfig config;
  config.total_rounds = 24;
  config.seed = 3;

  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  Result<ValuationResult> one_shot = IpssShapley(session, config);
  ASSERT_TRUE(one_shot.ok());

  ValuationResult sweep = RunUninterrupted(fn, [&] {
    return std::make_unique<IpssSweep>(6, config);
  });
  ExpectBitIdentical(one_shot->values, sweep.values);
  EXPECT_EQ(sweep.num_trainings, one_shot->num_trainings);
}

TEST(IpssSweepTest, ResumedBitIdenticalToUninterrupted) {
  TableUtility fn = RandomTable(7, 11);
  IpssConfig config;
  config.total_rounds = 40;
  config.seed = 9;
  const auto make = [&] { return std::make_unique<IpssSweep>(7, config); };
  ValuationResult uninterrupted = RunUninterrupted(fn, make);
  for (int chunk : {1, 3, 7}) {
    ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, chunk);
    ExpectBitIdentical(uninterrupted.values, resumed.values);
  }
}

TEST(StratifiedSweepTest, MatchesOneShotForBothSchemes) {
  TableUtility fn = RandomTable(6, 21);
  for (SvScheme scheme :
       {SvScheme::kMarginal, SvScheme::kComplementary}) {
    StratifiedConfig config;
    config.scheme = scheme;
    config.total_rounds = 30;
    config.seed = 5;

    UtilityCache cache(&fn);
    UtilitySession session(&cache);
    Result<ValuationResult> one_shot =
        StratifiedSamplingShapley(session, config);
    ASSERT_TRUE(one_shot.ok());

    ValuationResult sweep = RunUninterrupted(fn, [&] {
      return std::make_unique<StratifiedSweep>(6, config);
    });
    ExpectBitIdentical(one_shot->values, sweep.values);
  }
}

TEST(StratifiedSweepTest, ResumedBitIdenticalToUninterrupted) {
  TableUtility fn = MonotoneTable(6);
  StratifiedConfig config;
  config.total_rounds = 25;
  config.seed = 13;
  const auto make = [&] {
    return std::make_unique<StratifiedSweep>(6, config);
  };
  ValuationResult uninterrupted = RunUninterrupted(fn, make);
  ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, 4);
  ExpectBitIdentical(uninterrupted.values, resumed.values);
}

TEST(ExactSweepTest, MatchesExactShapleyMcAndCc) {
  TableUtility fn = PaperTableOne();
  {
    UtilityCache cache(&fn);
    UtilitySession session(&cache);
    Result<ValuationResult> exact = ExactShapleyMc(session);
    ASSERT_TRUE(exact.ok());
    ValuationResult sweep = RunUninterrupted(fn, [&] {
      return std::make_unique<ExactSweep>(3, SvScheme::kMarginal);
    });
    ExpectBitIdentical(exact->values, sweep.values);
    EXPECT_EQ(sweep.num_trainings, 8u);
  }
  {
    UtilityCache cache(&fn);
    UtilitySession session(&cache);
    Result<ValuationResult> exact = ExactShapleyCc(session);
    ASSERT_TRUE(exact.ok());
    ValuationResult sweep = RunUninterrupted(fn, [&] {
      return std::make_unique<ExactSweep>(3, SvScheme::kComplementary);
    });
    ExpectBitIdentical(exact->values, sweep.values);
  }
}

TEST(ExactSweepTest, ResumedBitIdenticalToUninterrupted) {
  TableUtility fn = RandomTable(5, 31);
  const auto make = [&] {
    return std::make_unique<ExactSweep>(5, SvScheme::kMarginal);
  };
  ValuationResult uninterrupted = RunUninterrupted(fn, make);
  ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, 5);
  ExpectBitIdentical(uninterrupted.values, resumed.values);
}

TEST(PermutationMcSweepTest, ResumedBitIdenticalAcrossRngBoundary) {
  // The permutation sampler's RNG lives across steps: resuming from a
  // snapshot must continue the identical permutation stream, which only
  // works if the serialized RNG state (engine + distribution carry)
  // round-trips exactly.
  TableUtility fn = RandomTable(6, 41);
  PermutationMcConfig config;
  config.permutations = 30;
  config.seed = 17;
  const auto make = [&] {
    return std::make_unique<PermutationMcSweep>(6, config);
  };
  ValuationResult uninterrupted = RunUninterrupted(fn, make);
  for (int chunk : {1, 4, 13}) {
    ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, chunk);
    ExpectBitIdentical(uninterrupted.values, resumed.values);
  }
}

TEST(PermutationMcSweepTest, ConvergesTowardExactSv) {
  TableUtility fn = PaperTableOne();
  PermutationMcConfig config;
  config.permutations = 4000;
  config.seed = 23;
  ValuationResult result = RunUninterrupted(fn, [&] {
    return std::make_unique<PermutationMcSweep>(3, config);
  });
  // Exact SV of Table I is (0.22, 0.32, 0.32).
  EXPECT_NEAR(result.values[0], 0.22, 0.02);
  EXPECT_NEAR(result.values[1], 0.32, 0.02);
  EXPECT_NEAR(result.values[2], 0.32, 0.02);
}

// ---------------------------------------------------------------------
// PeekNext: the speculative-prefetch contract. Peeking must (a) be pure
// (no observable effect on the sweep's later draws — final values stay
// bit-identical), (b) be deterministic (two peeks agree), and (c) name
// exactly what the sweep goes on to demand: prefetching every peeked
// coalition leaves the subsequent Step with zero cache misses, and the
// whole run trains exactly the coalitions an unprefetched run would
// (no mis-speculation).
// ---------------------------------------------------------------------

/// Drives `make()`'s sweep in `chunk`-unit slices, prefetching what
/// PeekNext(chunk) announces before every Step, and checks the contract
/// above against an unprefetched reference run. `strict_slice_coverage`
/// additionally pins per-slice exactness (peek(chunk) covers step(chunk))
/// — epoch-planned sweeps can only peek to their epoch boundary, so they
/// check the run-level properties only.
void ExpectPeekDrivenPrefetchExact(
    const UtilityFunction& fn,
    const std::function<std::unique_ptr<ResumableEstimator>()>& make,
    int chunk, bool strict_slice_coverage) {
  UtilityCache ref_cache(&fn);
  UtilitySession ref_session(&ref_cache);
  std::unique_ptr<ResumableEstimator> ref_sweep = make();
  Result<ValuationResult> reference = ref_sweep->Run(ref_session);
  FEDSHAP_CHECK_OK(reference.status());

  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  std::unique_ptr<ResumableEstimator> sweep = make();
  EXPECT_TRUE(sweep->PeekNext(0).empty());
  while (!sweep->done()) {
    const std::vector<Coalition> peeked =
        sweep->PeekNext(static_cast<size_t>(chunk));
    EXPECT_EQ(sweep->PeekNext(static_cast<size_t>(chunk)), peeked)
        << "PeekNext is not deterministic";
    for (const Coalition& c : peeked) {
      FEDSHAP_CHECK_OK(cache.Get(c).status());
    }
    const size_t misses_before = cache.misses();
    FEDSHAP_CHECK_OK(sweep->Step(session, chunk));
    if (strict_slice_coverage) {
      // Everything the slice demanded was announced: no miss survived
      // the prefetch.
      EXPECT_EQ(cache.misses(), misses_before);
    }
  }
  EXPECT_TRUE(sweep->PeekNext(4).empty());  // done: nothing left to peek
  Result<ValuationResult> finished = sweep->Finish(session);
  FEDSHAP_CHECK_OK(finished.status());

  // Purity: peek+prefetch must not perturb a single bit of the result.
  ExpectBitIdentical(reference->values, finished->values);
  // Exactness: the prefetched run trained the same coalition set — every
  // peeked coalition was really demanded (zero wasted trainings here;
  // the service tolerates mis-speculation, the sweeps don't emit it).
  EXPECT_EQ(cache.misses(), ref_cache.misses());
}

TEST(IpssSweepTest, PeekNextAnnouncesExactlyTheUpcomingEvaluations) {
  TableUtility fn = RandomTable(7, 51);
  IpssConfig config;
  config.total_rounds = 40;
  config.seed = 9;
  const auto make = [&] { return std::make_unique<IpssSweep>(7, config); };
  for (int chunk : {1, 3, 8}) {
    ExpectPeekDrivenPrefetchExact(fn, make, chunk,
                                  /*strict_slice_coverage=*/true);
  }
}

TEST(StratifiedSweepTest, PeekNextAnnouncesExactlyTheUpcomingEvaluations) {
  TableUtility fn = RandomTable(6, 53);
  StratifiedConfig config;
  config.total_rounds = 30;
  config.seed = 5;
  const auto make = [&] {
    return std::make_unique<StratifiedSweep>(6, config);
  };
  ExpectPeekDrivenPrefetchExact(fn, make, 4, /*strict_slice_coverage=*/true);
}

TEST(ExactSweepTest, PeekNextAnnouncesExactlyTheUpcomingEvaluations) {
  TableUtility fn = RandomTable(5, 57);
  const auto make = [&] {
    return std::make_unique<ExactSweep>(5, SvScheme::kMarginal);
  };
  ExpectPeekDrivenPrefetchExact(fn, make, 5, /*strict_slice_coverage=*/true);
}

TEST(PermutationMcSweepTest, PeekNextCopiesRngWithoutAdvancingIt) {
  // The permutation sampler draws from a live RNG: PeekNext must
  // simulate on a *copy*, or every peek would shift the stream and break
  // bit-identity with the unpeeked run.
  TableUtility fn = RandomTable(6, 59);
  PermutationMcConfig config;
  config.permutations = 20;
  config.seed = 17;
  const auto make = [&] {
    return std::make_unique<PermutationMcSweep>(6, config);
  };
  for (int chunk : {1, 4}) {
    ExpectPeekDrivenPrefetchExact(fn, make, chunk,
                                  /*strict_slice_coverage=*/true);
  }
}

TEST(AdaptiveSweepTest, PeekNextStopsAtTheEpochBoundary) {
  // Adaptive allocation plans each epoch from utilities of the previous
  // one, so only the current epoch's draws are determined: PeekNext
  // simulates those on an RNG copy and returns {} at the boundary rather
  // than speculating on an unknowable plan.
  TableUtility fn = RandomTable(7, 61);
  AdaptiveAllocationConfig config;
  config.total_rounds = 36;
  config.reallocate_every = 8;
  config.seed = 15;
  const auto make = [&] {
    return std::make_unique<AdaptiveStratifiedSweep>(7, config);
  };
  for (int chunk : {1, 5}) {
    ExpectPeekDrivenPrefetchExact(fn, make, chunk,
                                  /*strict_slice_coverage=*/false);
  }
}

TEST(SnapshotValidationTest, WrongAlgorithmRejected) {
  IpssConfig ipss_config;
  ipss_config.total_rounds = 10;
  IpssSweep ipss(4, ipss_config);
  Result<std::string> snapshot = ipss.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  StratifiedConfig strat_config;
  StratifiedSweep stratified(4, strat_config);
  EXPECT_EQ(stratified.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotValidationTest, ConfigMismatchRejected) {
  IpssConfig config;
  config.total_rounds = 16;
  config.seed = 1;
  IpssSweep original(5, config);
  Result<std::string> snapshot = original.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  config.seed = 2;  // different sampling stream
  IpssSweep different_seed(5, config);
  EXPECT_EQ(different_seed.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);

  config.seed = 1;
  IpssSweep different_n(6, config);
  EXPECT_EQ(different_n.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);

  PermutationMcConfig perm_a;
  perm_a.seed = 1;
  PermutationMcSweep perm(4, perm_a);
  Result<std::string> perm_snapshot = perm.Snapshot();
  ASSERT_TRUE(perm_snapshot.ok());
  perm_a.seed = 99;
  PermutationMcSweep other(4, perm_a);
  EXPECT_EQ(other.Restore(*perm_snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotValidationTest, CorruptedSnapshotRejected) {
  TableUtility fn = MonotoneTable(5);
  IpssConfig config;
  config.total_rounds = 12;
  IpssSweep sweep(5, config);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  ASSERT_TRUE(sweep.Step(session, 6).ok());
  Result<std::string> snapshot = sweep.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  std::string corrupted = *snapshot;
  corrupted[corrupted.size() - 3] ^= 0x40;
  IpssSweep target(5, config);
  EXPECT_FALSE(target.Restore(corrupted).ok());
  EXPECT_FALSE(target.Restore("not a snapshot").ok());
  // The failed restores left the target untouched and usable.
  EXPECT_EQ(target.completed_units(), 0u);
  EXPECT_TRUE(target.Restore(*snapshot).ok());
  EXPECT_EQ(target.completed_units(), 6u);
}

TEST(SnapshotFileTest, SaveLoadRoundTripAndMissingFile) {
  const std::string path = TempPath("checkpoint.bin");
  std::remove(path.c_str());
  TableUtility fn = MonotoneTable(5);
  PermutationMcConfig config;
  config.permutations = 10;
  PermutationMcSweep sweep(5, config);

  EXPECT_EQ(LoadSnapshot(sweep, path).code(), StatusCode::kNotFound);

  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  ASSERT_TRUE(sweep.Step(session, 4).ok());
  ASSERT_TRUE(SaveSnapshot(sweep, path).ok());

  PermutationMcSweep restored(5, config);
  ASSERT_TRUE(LoadSnapshot(restored, path).ok());
  EXPECT_EQ(restored.completed_units(), 4u);
  std::remove(path.c_str());
}

TEST(SweepLifecycleTest, InvalidConfigSurfacesOnUse) {
  IpssConfig config;
  config.total_rounds = 0;
  IpssSweep sweep(4, config);
  TableUtility fn = MonotoneTable(4);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  EXPECT_FALSE(sweep.done());
  EXPECT_EQ(sweep.Step(session, 1).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(sweep.Snapshot().ok());
}

// ---------------------------------------------------------------------------
// The adaptive stratified sweep. Its epoch plans are a function of the
// utilities it observed, so resumability here proves the hardest case:
// the serialized state must carry the whole allocation decision process
// (moments, buckets, plan, cursor), not just an RNG position.

TEST(AdaptiveSweepTest, MatchesOneShotAdaptive) {
  TableUtility fn = RandomTable(7, 43);
  AdaptiveAllocationConfig config;
  config.total_rounds = 36;
  config.reallocate_every = 8;
  config.seed = 15;

  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  Result<ValuationResult> one_shot =
      AdaptiveStratifiedShapley(session, config);
  ASSERT_TRUE(one_shot.ok());

  ValuationResult sweep = RunUninterrupted(fn, [&] {
    return std::make_unique<AdaptiveStratifiedSweep>(7, config);
  });
  ExpectBitIdentical(one_shot->values, sweep.values);
  EXPECT_EQ(sweep.num_trainings, one_shot->num_trainings);
}

TEST(AdaptiveSweepTest, ResumedBitIdenticalAcrossChunkSizes) {
  // reallocate_every=8 with chunks 1/3/7 puts snapshot points inside
  // epochs, exactly at epoch boundaries, and straddling a reallocation —
  // every alignment the service's checkpoint_every can produce.
  TableUtility fn = RandomTable(7, 47);
  for (PairPolicy policy :
       {PairPolicy::kRequireSampled, PairPolicy::kEvaluateOnDemand}) {
    AdaptiveAllocationConfig config;
    config.total_rounds = 40;
    config.reallocate_every = 8;
    config.pair_policy = policy;
    config.seed = 21;
    const auto make = [&] {
      return std::make_unique<AdaptiveStratifiedSweep>(7, config);
    };
    ValuationResult uninterrupted = RunUninterrupted(fn, make);
    for (int chunk : {1, 3, 7}) {
      ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, chunk);
      ExpectBitIdentical(uninterrupted.values, resumed.values);
    }
  }
}

TEST(AdaptiveSweepTest, ResumedBitIdenticalForCcScheme) {
  TableUtility fn = MonotoneTable(6);
  AdaptiveAllocationConfig config;
  config.scheme = SvScheme::kComplementary;
  config.total_rounds = 30;
  config.reallocate_every = 6;
  config.seed = 27;
  const auto make = [&] {
    return std::make_unique<AdaptiveStratifiedSweep>(6, config);
  };
  ValuationResult uninterrupted = RunUninterrupted(fn, make);
  ValuationResult resumed = RunWithSnapshotsEveryStep(fn, make, 5);
  ExpectBitIdentical(uninterrupted.values, resumed.values);
}

TEST(AdaptiveSweepTest, CrashMidReallocationReplaysNoTraining) {
  // Fault injection against a durable utility store: kill the run right
  // after a mid-epoch step (the allocation state is half-spent), restore
  // from the snapshot into a fresh process image, and finish. The values
  // must match the uninterrupted run bit for bit, and the two phases
  // together must train each coalition exactly once — the crash repays
  // zero trainings.
  TableUtility fn = MonotoneTable(6);
  AdaptiveAllocationConfig config;
  config.total_rounds = 32;
  config.reallocate_every = 8;
  config.seed = 33;

  ValuationResult uninterrupted = RunUninterrupted(fn, [&] {
    return std::make_unique<AdaptiveStratifiedSweep>(6, config);
  });
  size_t uninterrupted_fresh = 0;
  {
    UtilityCache cache(&fn);
    UtilitySession session(&cache);
    AdaptiveStratifiedSweep sweep(6, config);
    FEDSHAP_CHECK_OK(sweep.Run(session).status());
    uninterrupted_fresh = session.num_fresh_trainings();
  }

  const std::string stem = TempPath("adaptive_crash_store");
  std::remove(UtilityStore::StemPath(stem, fn.Fingerprint()).c_str());
  std::string snapshot;
  size_t fresh_before_crash = 0;
  {
    UtilityCache cache(&fn);
    Result<std::unique_ptr<UtilityStore>> store =
        OpenAndAttachStore(stem, /*resume=*/false, fn, cache);
    ASSERT_TRUE(store.ok());
    UtilitySession session(&cache);
    AdaptiveStratifiedSweep sweep(6, config);
    // 19 rounds: past the pilot (12 rounds at n=6) and 7 rounds into the
    // first reallocated epoch — mid-epoch, plan half-executed.
    ASSERT_TRUE(sweep.Step(session, 19).ok());
    ASSERT_FALSE(sweep.done());
    Result<std::string> snap = sweep.Snapshot();
    ASSERT_TRUE(snap.ok());
    snapshot = std::move(snap).value();
    fresh_before_crash = session.num_fresh_trainings();
    ASSERT_TRUE((*store)->Flush().ok());
    // The process dies here: cache, session and sweep all vanish.
  }
  {
    UtilityCache cache(&fn);
    Result<std::unique_ptr<UtilityStore>> store =
        OpenAndAttachStore(stem, /*resume=*/true, fn, cache);
    ASSERT_TRUE(store.ok());
    EXPECT_GT((*store)->loaded_entries(), 0u);
    UtilitySession session(&cache);
    AdaptiveStratifiedSweep sweep(6, config);
    ASSERT_TRUE(sweep.Restore(snapshot).ok());
    EXPECT_EQ(sweep.completed_units(), 19u);
    while (!sweep.done()) {
      ASSERT_TRUE(sweep.Step(session, 4).ok());
    }
    Result<ValuationResult> result = sweep.Finish(session);
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(uninterrupted.values, result->values);
    // Every distinct coalition was trained exactly once across the two
    // phases; the restored phase re-used the store for everything the
    // first phase already paid for.
    EXPECT_EQ(fresh_before_crash + session.num_fresh_trainings(),
              uninterrupted_fresh);
  }
  std::remove(UtilityStore::StemPath(stem, fn.Fingerprint()).c_str());
}

TEST(AdaptiveSweepTest, ConfigMismatchRejected) {
  AdaptiveAllocationConfig config;
  config.total_rounds = 24;
  config.seed = 7;
  AdaptiveStratifiedSweep original(5, config);
  Result<std::string> snapshot = original.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  config.seed = 8;
  AdaptiveStratifiedSweep different_seed(5, config);
  EXPECT_EQ(different_seed.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);

  config.seed = 7;
  config.reallocate_every = 4;
  AdaptiveStratifiedSweep different_epochs(5, config);
  EXPECT_EQ(different_epochs.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);

  config = {};
  config.total_rounds = 24;
  config.seed = 7;
  config.coverage_per_client = 0.0;
  AdaptiveStratifiedSweep different_coverage(5, config);
  EXPECT_EQ(different_coverage.Restore(*snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SnapshotValidationTest, VersionOneSnapshotsStillRestore) {
  // Snapshots written before the adaptive sweep existed carry frame
  // version 1; a service upgrade must keep restoring them. The payload
  // layout of the pre-existing sweeps did not change, so a v1 frame is
  // simply the old version number around the same bytes.
  TableUtility fn = MonotoneTable(5);
  StratifiedConfig config;
  config.total_rounds = 20;
  config.seed = 3;
  StratifiedSweep sweep(5, config);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  ASSERT_TRUE(sweep.Step(session, 8).ok());
  Result<std::string> snapshot = sweep.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  Result<std::string_view> payload = DecodeFramed(
      kSweepSnapshotMagic, kSweepSnapshotVersion, *snapshot);
  ASSERT_TRUE(payload.ok());
  const std::string v1 =
      EncodeFramed(kSweepSnapshotMagic, 1, std::string(*payload));

  StratifiedSweep restored(5, config);
  ASSERT_TRUE(restored.Restore(v1).ok());
  EXPECT_EQ(restored.completed_units(), 8u);

  // A frame from a *future* version is rejected, not misparsed.
  const std::string v9 = EncodeFramed(
      kSweepSnapshotMagic, kSweepSnapshotVersion + 7,
      std::string(*payload));
  StratifiedSweep other(5, config);
  EXPECT_FALSE(other.Restore(v9).ok());
}

TEST(AdaptiveSweepTest, CorruptedSnapshotRejectedAndTargetUsable) {
  TableUtility fn = MonotoneTable(5);
  AdaptiveAllocationConfig config;
  config.total_rounds = 20;
  config.seed = 11;
  AdaptiveStratifiedSweep sweep(5, config);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  ASSERT_TRUE(sweep.Step(session, 9).ok());
  Result<std::string> snapshot = sweep.Snapshot();
  ASSERT_TRUE(snapshot.ok());

  std::string corrupted = *snapshot;
  corrupted[corrupted.size() - 2] ^= 0x11;
  AdaptiveStratifiedSweep target(5, config);
  EXPECT_FALSE(target.Restore(corrupted).ok());
  EXPECT_EQ(target.completed_units(), 0u);
  EXPECT_TRUE(target.Restore(*snapshot).ok());
  EXPECT_EQ(target.completed_units(), 9u);
}

// ---------------------------------------------------------------------------
// Run-level determinism over a real batched-training FedAvg utility.

/// A 5-client FedAvg MLP workload trained through the batched kernel
/// path (the default gradient mode) with the given batch size.
std::unique_ptr<FedAvgUtility> MakeDeterminismGame(int batch_size) {
  Rng rng(2024);
  Result<Dataset> pool = GenerateBlobs(3, 6, 3.0, 5 * 14 + 30, rng);
  FEDSHAP_CHECK(pool.ok());
  std::vector<Dataset> clients;
  for (int c = 0; c < 5; ++c) {
    std::vector<size_t> idx;
    for (size_t i = c * 14; i < static_cast<size_t>(c + 1) * 14; ++i) {
      idx.push_back(i);
    }
    clients.push_back(pool->Subset(idx));
  }
  std::vector<size_t> test_idx;
  for (size_t i = 5 * 14; i < pool->size(); ++i) test_idx.push_back(i);
  Dataset test = pool->Subset(test_idx);

  Mlp prototype(6, 4, 3);
  Rng init(77);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 2;
  config.local.epochs = 1;
  config.local.batch_size = batch_size;
  config.local.learning_rate = 0.2;
  config.seed = 4321;
  Result<std::unique_ptr<FedAvgUtility>> fn = FedAvgUtility::Create(
      std::move(clients), std::move(test), prototype, config,
      UtilityMetric::kNegativeLoss);
  FEDSHAP_CHECK(fn.ok());
  return std::move(fn).value();
}

ValuationResult RunIpss(const UtilityFunction& fn, ThreadPool* pool,
                        UtilityStore* store = nullptr) {
  UtilityCache cache(&fn);
  if (store != nullptr) cache.AttachStore(store, /*flush_every=*/1);
  UtilitySession session(&cache, pool);
  IpssConfig config;
  config.total_rounds = 20;
  config.seed = 99;
  Result<ValuationResult> result = IpssShapley(session, config);
  FEDSHAP_CHECK_OK(result.status());
  return std::move(result).value();
}

TEST(DeterminismTest, SameSeedBitIdenticalAcrossInProcessRuns) {
  std::unique_ptr<FedAvgUtility> fn = MakeDeterminismGame(8);
  ValuationResult first = RunIpss(*fn, nullptr);
  ValuationResult second = RunIpss(*fn, nullptr);
  ExpectBitIdentical(first.values, second.values);
  EXPECT_EQ(first.num_trainings, second.num_trainings);
}

TEST(DeterminismTest, SameSeedBitIdenticalAcrossThreadCounts) {
  std::unique_ptr<FedAvgUtility> fn = MakeDeterminismGame(8);
  ValuationResult sequential = RunIpss(*fn, nullptr);
  ThreadPool pool(4);
  ValuationResult threaded = RunIpss(*fn, &pool);
  ExpectBitIdentical(sequential.values, threaded.values);
  EXPECT_EQ(sequential.num_trainings, threaded.num_trainings);
}

TEST(DeterminismTest, SameSeedBitIdenticalAcrossStoreWarmResume) {
  std::unique_ptr<FedAvgUtility> fn = MakeDeterminismGame(8);
  const std::string stem = TempPath("determinism_store");
  std::remove(UtilityStore::StemPath(stem, fn->Fingerprint()).c_str());

  ValuationResult cold;
  {
    UtilityCache cache(fn.get());
    Result<std::unique_ptr<UtilityStore>> store =
        OpenAndAttachStore(stem, /*resume=*/false, *fn, cache);
    ASSERT_TRUE(store.ok());
    UtilitySession session(&cache);
    IpssConfig config;
    config.total_rounds = 20;
    config.seed = 99;
    Result<ValuationResult> result = IpssShapley(session, config);
    ASSERT_TRUE(result.ok());
    cold = std::move(result).value();
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    UtilityCache cache(fn.get());
    Result<std::unique_ptr<UtilityStore>> store =
        OpenAndAttachStore(stem, /*resume=*/true, *fn, cache);
    ASSERT_TRUE(store.ok());
    EXPECT_GT((*store)->loaded_entries(), 0u)
        << "warm resume should preload persisted trainings";
    UtilitySession session(&cache);
    IpssConfig config;
    config.total_rounds = 20;
    config.seed = 99;
    Result<ValuationResult> warm = IpssShapley(session, config);
    ASSERT_TRUE(warm.ok());
    ExpectBitIdentical(cold.values, warm->values);
    EXPECT_EQ(cold.num_trainings, warm->num_trainings);
  }
  std::remove(UtilityStore::StemPath(stem, fn->Fingerprint()).c_str());
}

TEST(DeterminismTest, BatchConfigIsPartOfTheWorkloadFingerprint) {
  // Different --batch-size (or gradient mode) means different training
  // numerics, so the content-addressed store must treat them as
  // different workloads.
  std::unique_ptr<FedAvgUtility> batch8 = MakeDeterminismGame(8);
  std::unique_ptr<FedAvgUtility> batch8_again = MakeDeterminismGame(8);
  std::unique_ptr<FedAvgUtility> batch16 = MakeDeterminismGame(16);
  EXPECT_EQ(batch8->Fingerprint(), batch8_again->Fingerprint());
  EXPECT_NE(batch8->Fingerprint(), batch16->Fingerprint());

  // And the two batch sizes genuinely are different workloads.
  ValuationResult v8 = RunIpss(*batch8, nullptr);
  ValuationResult v16 = RunIpss(*batch16, nullptr);
  bool any_different = false;
  for (size_t i = 0; i < v8.values.size(); ++i) {
    if (v8.values[i] != v16.values[i]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(SweepLifecycleTest, FinishBeforeDoneFails) {
  TableUtility fn = MonotoneTable(5);
  IpssConfig config;
  config.total_rounds = 12;
  IpssSweep sweep(5, config);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  ASSERT_TRUE(sweep.Step(session, 2).ok());
  EXPECT_EQ(sweep.Finish(session).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fedshap
