#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace fedshap {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, ParseLogLevelNamesAndFallback) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("DEBUG", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("Warning", LogLevel::kInfo), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel(nullptr, LogLevel::kWarning),
            LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kInfo), LogLevel::kInfo);
}

TEST(LoggingTest, LogMacroDoesNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // silence output in the test log
  FEDSHAP_LOG(Info) << "info message " << 42;
  FEDSHAP_LOG(Warning) << "warning message";
  SetLogLevel(original);
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(FEDSHAP_CHECK(1 == 2), "Check failed: 1 == 2");
}

TEST(CheckDeathTest, PassingCheckIsSilent) {
  FEDSHAP_CHECK(true);
  SUCCEED();
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(FEDSHAP_CHECK_OK(Status::Internal("kaboom")), "kaboom");
}

TEST(CheckDeathTest, CheckOkPassesOnOk) {
  FEDSHAP_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(CheckDeathTest, DcheckActiveMatchesBuildType) {
#ifdef NDEBUG
  FEDSHAP_DCHECK(false);  // compiled out in release
  SUCCEED();
#else
  EXPECT_DEATH(FEDSHAP_DCHECK(false), "Check failed");
#endif
}

}  // namespace
}  // namespace fedshap
