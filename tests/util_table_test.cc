#include "util/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(ConsoleTableTest, RendersAlignedColumns) {
  ConsoleTable table({"algo", "time"});
  table.AddRow({"IPSS", "1.2s"});
  table.AddRow({"MC-Shapley", "95985s"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| algo"), std::string::npos);
  EXPECT_NE(out.find("IPSS"), std::string::npos);
  EXPECT_NE(out.find("MC-Shapley"), std::string::npos);
  // Every rendered line has equal width.
  std::istringstream lines(out);
  std::string line;
  size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(ConsoleTableTest, SeparatorAddsRule) {
  ConsoleTable table({"a"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::ostringstream os;
  table.Print(os);
  // header rule + top + separator + bottom = 4 rules.
  size_t rules = 0;
  std::istringstream lines(os.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(1.2300, 4), "1.23");
  EXPECT_EQ(FormatDouble(5.0, 2), "5");
  EXPECT_EQ(FormatDouble(-0.0, 3), "0");
  EXPECT_EQ(FormatDouble(0.128, 2), "0.13");
}

TEST(FormatDoubleTest, HandlesSpecials) {
  EXPECT_EQ(FormatDouble(std::nan(""), 2), "nan");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity(), 2),
            "inf");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity(), 2),
            "-inf");
}

TEST(FormatSecondsTest, AdaptiveUnits) {
  EXPECT_EQ(FormatSeconds(0.0000005), "0us");
  EXPECT_EQ(FormatSeconds(0.0005), "500us");
  EXPECT_EQ(FormatSeconds(0.012), "12.0ms");
  EXPECT_EQ(FormatSeconds(3.5), "3.50s");
  EXPECT_EQ(FormatSeconds(-1.0), "-");
  EXPECT_NE(FormatSeconds(123456.0).find("e"), std::string::npos);
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvEscape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvEscape("with\nnewline"), "\"with\nnewline\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/fedshap_csv_test.csv";
  Result<CsvWriter> writer = CsvWriter::Create(path, {"a", "b"});
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->WriteRow({"1", "x,y"}).ok());
  ASSERT_TRUE(writer->WriteRow({"2", "z"}).ok());

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,\"x,y\"");
  std::getline(in, line);
  EXPECT_EQ(line, "2,z");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RowWidthMismatchFails) {
  const std::string path = ::testing::TempDir() + "/fedshap_csv_test2.csv";
  Result<CsvWriter> writer = CsvWriter::Create(path, {"a", "b"});
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(writer->WriteRow({"only-one"}).ok());
  std::remove(path.c_str());
}

TEST(CsvWriterTest, EmptyHeaderRejected) {
  Result<CsvWriter> writer =
      CsvWriter::Create(::testing::TempDir() + "/x.csv", {});
  EXPECT_FALSE(writer.ok());
}

}  // namespace
}  // namespace fedshap
