#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(GenerateDigitsTest, ShapeAndLabels) {
  DigitsConfig config;
  config.image_size = 8;
  config.num_classes = 10;
  config.num_writers = 4;
  Rng rng(1);
  Result<FederatedSource> source = GenerateDigits(config, 500, rng);
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_EQ(source->data.size(), 500u);
  EXPECT_EQ(source->data.num_features(), 64);
  EXPECT_EQ(source->data.num_classes(), 10);
  EXPECT_EQ(source->group_ids.size(), 500u);
  EXPECT_EQ(source->num_groups, 4);
  std::set<int> labels, writers;
  for (size_t i = 0; i < source->data.size(); ++i) {
    labels.insert(source->data.ClassLabel(i));
    writers.insert(source->group_ids[i]);
  }
  EXPECT_EQ(labels.size(), 10u);
  EXPECT_EQ(writers.size(), 4u);
}

TEST(GenerateDigitsTest, ClassesAreSeparable) {
  // Same-class samples should be closer to their class prototype than to
  // other classes on average: verify via nearest-centroid accuracy.
  DigitsConfig config;
  config.image_size = 8;
  config.num_classes = 4;
  config.pixel_noise = 0.2;
  Rng rng(2);
  Result<FederatedSource> source = GenerateDigits(config, 800, rng);
  ASSERT_TRUE(source.ok());
  const Dataset& data = source->data;
  const int dim = data.num_features();
  // Class centroids from the first half; evaluate on the second half.
  std::vector<std::vector<double>> centroid(4, std::vector<double>(dim, 0));
  std::vector<int> counts(4, 0);
  for (size_t i = 0; i < 400; ++i) {
    const int label = data.ClassLabel(i);
    for (int d = 0; d < dim; ++d) centroid[label][d] += data.Value(i, d);
    ++counts[label];
  }
  for (int c = 0; c < 4; ++c) {
    ASSERT_GT(counts[c], 0);
    for (int d = 0; d < dim; ++d) centroid[c][d] /= counts[c];
  }
  int correct = 0;
  for (size_t i = 400; i < 800; ++i) {
    double best = 1e18;
    int best_class = -1;
    for (int c = 0; c < 4; ++c) {
      double dist = 0.0;
      for (int d = 0; d < dim; ++d) {
        const double diff = data.Value(i, d) - centroid[c][d];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_class = c;
      }
    }
    if (best_class == data.ClassLabel(i)) ++correct;
  }
  EXPECT_GT(correct / 400.0, 0.8);
}

TEST(GenerateDigitsTest, WriterStyleShiftsDistribution) {
  DigitsConfig config;
  config.image_size = 8;
  config.num_classes = 2;
  config.num_writers = 2;
  config.writer_shift = 1.0;
  config.pixel_noise = 0.05;
  Rng rng(3);
  Result<FederatedSource> source = GenerateDigits(config, 1000, rng);
  ASSERT_TRUE(source.ok());
  // Mean images of the two writers should differ noticeably.
  const int dim = source->data.num_features();
  std::vector<double> mean0(dim, 0), mean1(dim, 0);
  int n0 = 0, n1 = 0;
  std::vector<float> row(static_cast<size_t>(dim));
  for (size_t i = 0; i < source->data.size(); ++i) {
    source->data.CopyRow(i, row.data());
    if (source->group_ids[i] == 0) {
      for (int d = 0; d < dim; ++d) mean0[d] += row[d];
      ++n0;
    } else {
      for (int d = 0; d < dim; ++d) mean1[d] += row[d];
      ++n1;
    }
  }
  double gap = 0.0;
  for (int d = 0; d < dim; ++d) {
    gap += std::fabs(mean0[d] / n0 - mean1[d] / n1);
  }
  EXPECT_GT(gap / dim, 0.05);
}

TEST(GenerateDigitsTest, ValidatesConfig) {
  Rng rng(4);
  DigitsConfig bad_size;
  bad_size.image_size = 2;
  EXPECT_FALSE(GenerateDigits(bad_size, 10, rng).ok());
  DigitsConfig bad_classes;
  bad_classes.num_classes = 1;
  EXPECT_FALSE(GenerateDigits(bad_classes, 10, rng).ok());
  DigitsConfig bad_writers;
  bad_writers.num_writers = 0;
  EXPECT_FALSE(GenerateDigits(bad_writers, 10, rng).ok());
}

TEST(GenerateTabularTest, SchemaAndGroups) {
  TabularConfig config;
  config.num_occupations = 6;
  Rng rng(5);
  Result<FederatedSource> source = GenerateTabular(config, 400, rng);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->data.num_features(), kTabularFeatures);
  EXPECT_EQ(source->data.num_classes(), 2);
  EXPECT_EQ(source->num_groups, 6);
  std::set<int> groups(source->group_ids.begin(), source->group_ids.end());
  EXPECT_EQ(groups.size(), 6u);
}

TEST(GenerateTabularTest, LabelsCorrelateWithSignalFeatures) {
  TabularConfig config;
  config.label_noise = 0.0;
  Rng rng(6);
  Result<FederatedSource> source = GenerateTabular(config, 4000, rng);
  ASSERT_TRUE(source.ok());
  // Education (feature 1) should be higher for positive labels on average.
  double pos_edu = 0, neg_edu = 0;
  int pos = 0, neg = 0;
  for (size_t i = 0; i < source->data.size(); ++i) {
    if (source->data.ClassLabel(i) == 1) {
      pos_edu += source->data.Value(i, 1);
      ++pos;
    } else {
      neg_edu += source->data.Value(i, 1);
      ++neg;
    }
  }
  ASSERT_GT(pos, 100);
  ASSERT_GT(neg, 100);
  EXPECT_GT(pos_edu / pos, neg_edu / neg);
}

TEST(GenerateTabularTest, BothClassesPresent) {
  TabularConfig config;
  Rng rng(7);
  Result<FederatedSource> source = GenerateTabular(config, 1000, rng);
  ASSERT_TRUE(source.ok());
  std::vector<size_t> histogram = source->data.ClassHistogram();
  EXPECT_GT(histogram[0], 100u);
  EXPECT_GT(histogram[1], 100u);
}

TEST(GenerateRegressionTest, LinearSignalRecoverable) {
  RegressionConfig config;
  config.dim = 4;
  config.noise_stddev = 0.1;
  Rng rng(8);
  Result<Dataset> data = GenerateRegression(config, 2000, rng);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->num_classes(), 0);
  EXPECT_EQ(data->num_features(), 4);
  // Var(y) should far exceed noise variance (there is real signal).
  double mean = 0;
  for (size_t i = 0; i < data->size(); ++i) mean += data->Target(i);
  mean /= data->size();
  double var = 0;
  for (size_t i = 0; i < data->size(); ++i) {
    var += (data->Target(i) - mean) * (data->Target(i) - mean);
  }
  var /= data->size();
  EXPECT_GT(var, 0.5);
}

TEST(GenerateRegressionTest, SameWeightSeedSameFunction) {
  RegressionConfig config;
  config.dim = 3;
  config.noise_stddev = 0.0;
  Rng rng_a(9), rng_b(9);
  Result<Dataset> a = GenerateRegression(config, 50, rng_a);
  Result<Dataset> b = GenerateRegression(config, 50, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_FLOAT_EQ(a->Target(i), b->Target(i));
  }
}

TEST(GenerateBlobsTest, SeparableAndBalancedEnough) {
  Rng rng(10);
  Result<Dataset> data = GenerateBlobs(3, 4, 6.0, 900, rng);
  ASSERT_TRUE(data.ok());
  std::vector<size_t> histogram = data->ClassHistogram();
  for (size_t count : histogram) EXPECT_GT(count, 200u);
}

TEST(GenerateBlobsTest, RejectsBadConfig) {
  Rng rng(11);
  EXPECT_FALSE(GenerateBlobs(1, 4, 2.0, 10, rng).ok());
  EXPECT_FALSE(GenerateBlobs(3, 0, 2.0, 10, rng).ok());
}

}  // namespace
}  // namespace fedshap
