#include "core/kgreedy.h"

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/valuation_metrics.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

TEST(KGreedyTest, KEqualsNReproducesExactSv) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 5;
    TableUtility table = RandomTable(n, seed);
    UtilityCache cache(&table);
    UtilitySession kg_session(&cache), exact_session(&cache);
    Result<ValuationResult> kg = KGreedyShapley(kg_session, n);
    Result<ValuationResult> exact = ExactShapleyMc(exact_session);
    ASSERT_TRUE(kg.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LT(testing_util::MaxAbsDiff(kg->values, exact->values), 1e-10);
  }
}

TEST(KGreedyTest, BudgetMatchesSubsetsUpToK) {
  const int n = 7;
  TableUtility table = RandomTable(n, 3);
  for (int k = 1; k <= n; ++k) {
    UtilityCache cache(&table);
    UtilitySession session(&cache);
    Result<ValuationResult> result = KGreedyShapley(session, k);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_trainings, SubsetsUpToSize(n, k));
  }
}

TEST(KGreedyTest, ErrorShrinksWithKOnMonotoneUtility) {
  // The key-combinations phenomenon (Fig. 4): on diminishing-returns
  // utilities, small K already yields small relative error, and error is
  // (weakly) decreasing in K.
  const int n = 8;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  double previous_error = 1e18;
  for (int k = 1; k <= n; ++k) {
    UtilitySession session(&cache);
    Result<ValuationResult> kg = KGreedyShapley(session, k);
    ASSERT_TRUE(kg.ok());
    const double error = RelativeL2Error(exact->values, kg->values);
    EXPECT_LE(error, previous_error + 1e-9) << "k=" << k;
    previous_error = error;
  }
  EXPECT_NEAR(previous_error, 0.0, 1e-10);  // k=n is exact

  // K=3 of 8 already captures the bulk of the value.
  UtilitySession small_session(&cache);
  Result<ValuationResult> small = KGreedyShapley(small_session, 3);
  ASSERT_TRUE(small.ok());
  EXPECT_LT(RelativeL2Error(exact->values, small->values), 0.2);
}

TEST(KGreedyTest, PreservesRankingOnMonotoneUtility) {
  // Even at small K the *ranking* of clients matches the exact SV: client
  // strengths in MonotoneTable decrease with index.
  const int n = 6;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> kg = KGreedyShapley(session, 2);
  ASSERT_TRUE(kg.ok());
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_GT(kg->values[i], kg->values[i + 1]);
  }
}

TEST(KGreedyTest, PaperTableOneAtFullK) {
  TableUtility table = PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> kg = KGreedyShapley(session, 3);
  ASSERT_TRUE(kg.ok());
  EXPECT_NEAR(kg->values[0], 0.22, 1e-12);
  EXPECT_NEAR(kg->values[1], 0.32, 1e-12);
  EXPECT_NEAR(kg->values[2], 0.32, 1e-12);
}

TEST(KGreedyTest, Validation) {
  TableUtility table = RandomTable(4, 5);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  EXPECT_FALSE(KGreedyShapley(session, 0).ok());
  EXPECT_FALSE(KGreedyShapley(session, 5).ok());
}

TEST(KGreedyTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(10, 19);
  UtilityCache cache(&table);
  UtilitySession sequential(&cache);
  Result<ValuationResult> reference = KGreedyShapley(sequential, 3);
  ASSERT_TRUE(reference.ok());
  ThreadPool pool(4);
  UtilitySession batched(&cache, &pool);
  Result<ValuationResult> parallel = KGreedyShapley(batched, 3);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->values, reference->values);
  EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
  EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
  EXPECT_DOUBLE_EQ(parallel->charged_seconds, reference->charged_seconds);
}
}  // namespace
}  // namespace fedshap
