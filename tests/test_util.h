#ifndef FEDSHAP_TESTS_TEST_UTIL_H_
#define FEDSHAP_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "fl/utility.h"
#include "util/logging.h"
#include "util/random.h"

namespace fedshap {
namespace testing_util {

/// The paper's Table I (three hospitals), 0-indexed: client i here is the
/// paper's client i+1. Exact SV: (0.22, 0.32, 0.32).
inline TableUtility PaperTableOne() {
  Result<TableUtility> table = TableUtility::FromValues(
      3, {0.10, 0.50, 0.70, 0.80, 0.60, 0.90, 0.90, 0.96});
  FEDSHAP_CHECK(table.ok());
  return std::move(table).value();
}

/// Random bounded utility table; exercises scheme-equivalence properties.
inline TableUtility RandomTable(int n, uint64_t seed) {
  Rng rng(seed);
  Result<TableUtility> table = TableUtility::FromFunction(
      n, [&rng](const Coalition&) { return rng.Uniform(-1.0, 1.0); });
  FEDSHAP_CHECK(table.ok());
  return std::move(table).value();
}

/// Monotone diminishing-returns utility resembling FL accuracy curves:
/// U(S) = cap * (1 - exp(-sum of per-client strengths)). Client strengths
/// decay with index so values are distinct. The default strength makes the
/// curve saturate after 1-2 clients, like test accuracy in the paper's
/// key-combinations experiments (Fig. 3/4).
inline TableUtility MonotoneTable(int n, double cap = 0.9,
                                  double strength = 5.0) {
  Result<TableUtility> table =
      TableUtility::FromFunction(n, [cap, strength](const Coalition& s) {
        double mass = 0.0;
        s.ForEach([&](int i) {
          mass += strength / (1.0 + i);
        });
        return cap * (1.0 - std::exp(-mass));
      });
  FEDSHAP_CHECK(table.ok());
  return std::move(table).value();
}

/// Max absolute difference between two valuations.
inline double MaxAbsDiff(const std::vector<double>& a,
                         const std::vector<double>& b) {
  FEDSHAP_CHECK(a.size() == b.size());
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace testing_util
}  // namespace fedshap

#endif  // FEDSHAP_TESTS_TEST_UTIL_H_
