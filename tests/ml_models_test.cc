#include <cmath>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/cnn.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/sgd.h"

namespace fedshap {
namespace {

/// Model factories for the parameterized gradient-check / training suite.
struct ModelCase {
  const char* name;
  bool classification;
  std::function<std::unique_ptr<Model>(int dim, int classes)> make;
};

std::vector<ModelCase> AllModelCases() {
  return {
      {"linreg", false,
       [](int dim, int) { return std::make_unique<LinearRegression>(dim); }},
      {"logreg", true,
       [](int dim, int classes) {
         return std::make_unique<LogisticRegression>(dim, classes);
       }},
      {"mlp", true,
       [](int dim, int classes) {
         return std::make_unique<Mlp>(dim, 8, classes);
       }},
      {"cnn", true,
       [](int dim, int classes) {
         const int side = static_cast<int>(std::lround(std::sqrt(dim)));
         return std::make_unique<Cnn>(side, 2, classes);
       }},
  };
}

class ModelSuite : public ::testing::TestWithParam<size_t> {
 protected:
  ModelCase Case() const { return AllModelCases()[GetParam()]; }

  /// Small dataset matching the model type. CNN wants square images.
  Dataset MakeData(size_t rows, uint64_t seed) const {
    Rng rng(seed);
    if (!Case().classification) {
      RegressionConfig config;
      config.dim = 6;
      config.noise_stddev = 0.3;
      Result<Dataset> data = GenerateRegression(config, rows, rng);
      EXPECT_TRUE(data.ok());
      return std::move(data).value();
    }
    if (std::string(Case().name) == "cnn") {
      DigitsConfig config;
      config.image_size = 8;
      config.num_classes = 3;
      Result<FederatedSource> source = GenerateDigits(config, rows, rng);
      EXPECT_TRUE(source.ok());
      return std::move(source->data);
    }
    Result<Dataset> data = GenerateBlobs(3, 6, 4.0, rows, rng);
    EXPECT_TRUE(data.ok());
    return std::move(data).value();
  }

  std::unique_ptr<Model> MakeModel(const Dataset& data,
                                   uint64_t seed) const {
    const int classes = data.num_classes() > 0 ? data.num_classes() : 2;
    std::unique_ptr<Model> model = Case().make(data.num_features(), classes);
    Rng rng(seed);
    model->InitializeParameters(rng);
    return model;
  }
};

TEST_P(ModelSuite, ParameterRoundTrip) {
  Dataset data = MakeData(10, 1);
  std::unique_ptr<Model> model = MakeModel(data, 2);
  std::vector<float> params = model->GetParameters();
  EXPECT_EQ(params.size(), model->NumParameters());
  // Perturb, set, read back.
  for (float& p : params) p += 0.25f;
  ASSERT_TRUE(model->SetParameters(params).ok());
  EXPECT_EQ(model->GetParameters(), params);
  // Wrong size rejected.
  params.push_back(0.0f);
  EXPECT_FALSE(model->SetParameters(params).ok());
}

TEST_P(ModelSuite, CloneIsDeepAndExact) {
  Dataset data = MakeData(10, 3);
  std::unique_ptr<Model> model = MakeModel(data, 4);
  std::unique_ptr<Model> clone = model->Clone();
  EXPECT_EQ(clone->GetParameters(), model->GetParameters());
  // Mutating the clone leaves the original untouched.
  std::vector<float> params = clone->GetParameters();
  params[0] += 1.0f;
  ASSERT_TRUE(clone->SetParameters(params).ok());
  EXPECT_NE(clone->GetParameters()[0], model->GetParameters()[0]);
}

TEST_P(ModelSuite, GradientMatchesNumericalEstimate) {
  Dataset data = MakeData(6, 5);
  std::unique_ptr<Model> model = MakeModel(data, 6);
  std::vector<size_t> batch(data.size());
  std::iota(batch.begin(), batch.end(), 0);

  std::vector<float> analytic;
  model->ComputeGradient(data, batch, analytic);
  std::vector<float> numeric = NumericalGradient(*model, data, batch, 1e-3f);
  ASSERT_EQ(analytic.size(), numeric.size());

  double dot = 0, norm_a = 0, norm_n = 0, max_abs_diff = 0;
  for (size_t i = 0; i < analytic.size(); ++i) {
    dot += static_cast<double>(analytic[i]) * numeric[i];
    norm_a += static_cast<double>(analytic[i]) * analytic[i];
    norm_n += static_cast<double>(numeric[i]) * numeric[i];
    max_abs_diff = std::max(
        max_abs_diff,
        std::fabs(static_cast<double>(analytic[i]) - numeric[i]));
  }
  ASSERT_GT(norm_a, 0.0);
  ASSERT_GT(norm_n, 0.0);
  const double cosine = dot / std::sqrt(norm_a * norm_n);
  EXPECT_GT(cosine, 0.999) << Case().name;
  // float32 central differences: absolute agreement is loose but bounded.
  EXPECT_LT(max_abs_diff, 0.05) << Case().name;
}

TEST_P(ModelSuite, EmptyBatchYieldsZeroGradient) {
  Dataset data = MakeData(5, 7);
  std::unique_ptr<Model> model = MakeModel(data, 8);
  std::vector<float> grad;
  const double loss = model->ComputeGradient(data, {}, grad);
  EXPECT_EQ(loss, 0.0);
  for (float g : grad) EXPECT_EQ(g, 0.0f);
}

TEST_P(ModelSuite, SgdReducesLoss) {
  Dataset data = MakeData(200, 9);
  std::unique_ptr<Model> model = MakeModel(data, 10);
  const double initial_loss = model->Loss(data);
  SgdConfig config;
  config.epochs = 15;
  config.batch_size = 16;
  config.learning_rate = std::string(Case().name) == "linreg" ? 0.05 : 0.2;
  Rng rng(11);
  Result<double> final_loss = TrainSgd(*model, data, config, rng);
  ASSERT_TRUE(final_loss.ok());
  EXPECT_LT(model->Loss(data), initial_loss * 0.9) << Case().name;
}

TEST_P(ModelSuite, PredictOutputShape) {
  Dataset data = MakeData(3, 12);
  std::unique_ptr<Model> model = MakeModel(data, 13);
  std::vector<float> out;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  data.CopyRow(0, row.data());
  model->Predict(row.data(), out);
  EXPECT_EQ(static_cast<int>(out.size()), model->NumOutputs());
  if (Case().classification) {
    // Softmax outputs sum to 1.
    double total = 0;
    for (float p : out) {
      EXPECT_GE(p, 0.0f);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST_P(ModelSuite, NameIsNonEmpty) {
  Dataset data = MakeData(3, 14);
  std::unique_ptr<Model> model = MakeModel(data, 15);
  EXPECT_FALSE(model->Name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelSuite,
                         ::testing::Range<size_t>(0, 4),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return AllModelCases()[info.param].name;
                         });

// ---------------------------------------------------------------------------
// Model-specific behaviour.

TEST(LinearRegressionTest, ClosedFormRecoversTrueWeights) {
  RegressionConfig config;
  config.dim = 5;
  config.noise_stddev = 0.01;
  config.weight_seed = 77;
  Rng rng(1);
  Result<Dataset> data = GenerateRegression(config, 2000, rng);
  ASSERT_TRUE(data.ok());
  LinearRegression model(5);
  ASSERT_TRUE(model.FitClosedForm(*data).ok());
  EXPECT_LT(EvaluateMse(model, *data), 0.001);
}

TEST(LinearRegressionTest, ClosedFormBeatsShortSgd) {
  RegressionConfig config;
  config.dim = 4;
  config.noise_stddev = 0.2;
  Rng rng(2);
  Result<Dataset> data = GenerateRegression(config, 500, rng);
  ASSERT_TRUE(data.ok());
  LinearRegression closed(4), sgd_model(4);
  Rng init(3);
  sgd_model.InitializeParameters(init);
  ASSERT_TRUE(closed.FitClosedForm(*data).ok());
  SgdConfig sgd;
  sgd.epochs = 2;
  sgd.learning_rate = 0.05;
  Rng train_rng(4);
  ASSERT_TRUE(TrainSgd(sgd_model, *data, sgd, train_rng).ok());
  EXPECT_LE(EvaluateMse(closed, *data), EvaluateMse(sgd_model, *data) + 1e-9);
}

TEST(LinearRegressionTest, ClosedFormValidation) {
  LinearRegression model(3);
  Result<Dataset> wrong_dim = Dataset::Create(2, 0);
  ASSERT_TRUE(wrong_dim.ok());
  wrong_dim->Append({1.0f, 2.0f}, 0.5f);
  EXPECT_FALSE(model.FitClosedForm(*wrong_dim).ok());
  Result<Dataset> empty = Dataset::Create(3, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(model.FitClosedForm(*empty).ok());
}

TEST(LogisticRegressionTest, LearnsSeparableProblem) {
  Rng rng(5);
  Result<Dataset> data = GenerateBlobs(3, 4, 6.0, 600, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression model(4, 3);
  Rng init(6);
  model.InitializeParameters(init);
  SgdConfig config;
  config.epochs = 20;
  config.learning_rate = 0.3;
  Rng train_rng(7);
  ASSERT_TRUE(TrainSgd(model, *data, config, train_rng).ok());
  EXPECT_GT(EvaluateAccuracy(model, *data), 0.95);
}

TEST(SoftmaxTest, StableForLargeLogits) {
  std::vector<float> logits = {1000.0f, 1000.0f, 999.0f};
  SoftmaxInPlace(logits);
  EXPECT_NEAR(logits[0], logits[1], 1e-6);
  EXPECT_LT(logits[2], logits[0]);
  double total = logits[0] + logits[1] + logits[2];
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(MlpTest, OutperformsChanceOnBlobs) {
  Rng rng(8);
  Result<Dataset> data = GenerateBlobs(4, 6, 5.0, 800, rng);
  ASSERT_TRUE(data.ok());
  Mlp model(6, 16, 4);
  Rng init(9);
  model.InitializeParameters(init);
  SgdConfig config;
  config.epochs = 25;
  config.learning_rate = 0.2;
  Rng train_rng(10);
  ASSERT_TRUE(TrainSgd(model, *data, config, train_rng).ok());
  EXPECT_GT(EvaluateAccuracy(model, *data), 0.9);
}

TEST(CnnTest, LearnsDigits) {
  DigitsConfig digits;
  digits.image_size = 8;
  digits.num_classes = 4;
  digits.pixel_noise = 0.15;
  Rng rng(11);
  Result<FederatedSource> source = GenerateDigits(digits, 800, rng);
  ASSERT_TRUE(source.ok());
  Cnn model(8, 4, 4);
  Rng init(12);
  model.InitializeParameters(init);
  SgdConfig config;
  config.epochs = 12;
  config.learning_rate = 0.15;
  Rng train_rng(13);
  ASSERT_TRUE(TrainSgd(model, source->data, config, train_rng).ok());
  EXPECT_GT(EvaluateAccuracy(model, source->data), 0.8);
}

TEST(SgdTest, ValidatesConfig) {
  Rng rng(14);
  Result<Dataset> data = GenerateBlobs(2, 3, 4.0, 50, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression model(3, 2);
  SgdConfig config;
  Rng train_rng(15);
  config.epochs = -1;
  EXPECT_FALSE(TrainSgd(model, *data, config, train_rng).ok());
  config.epochs = 1;
  config.batch_size = 0;
  EXPECT_FALSE(TrainSgd(model, *data, config, train_rng).ok());
  config.batch_size = 8;
  config.learning_rate = 0.0;
  EXPECT_FALSE(TrainSgd(model, *data, config, train_rng).ok());
}

TEST(SgdTest, EmptyDataIsNoOp) {
  Result<Dataset> empty = Dataset::Create(3, 2);
  ASSERT_TRUE(empty.ok());
  LogisticRegression model(3, 2);
  Rng init(16);
  model.InitializeParameters(init);
  const std::vector<float> before = model.GetParameters();
  SgdConfig config;
  Rng rng(17);
  Result<double> loss = TrainSgd(model, *empty, config, rng);
  ASSERT_TRUE(loss.ok());
  EXPECT_EQ(loss.value(), 0.0);
  EXPECT_EQ(model.GetParameters(), before);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Rng rng(18);
  Result<Dataset> data = GenerateBlobs(2, 4, 3.0, 400, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression plain(4, 2), momentum(4, 2);
  Rng init_a(19), init_b(19);
  plain.InitializeParameters(init_a);
  momentum.InitializeParameters(init_b);
  SgdConfig config;
  config.epochs = 3;
  config.learning_rate = 0.02;
  Rng rng_a(20), rng_b(20);
  ASSERT_TRUE(TrainSgd(plain, *data, config, rng_a).ok());
  config.momentum = 0.9;
  ASSERT_TRUE(TrainSgd(momentum, *data, config, rng_b).ok());
  EXPECT_LT(momentum.Loss(*data), plain.Loss(*data));
}

TEST(MetricsTest, AccuracyOnKnownPredictions) {
  Rng rng(21);
  Result<Dataset> data = GenerateBlobs(2, 3, 8.0, 300, rng);
  ASSERT_TRUE(data.ok());
  LogisticRegression model(3, 2);
  Rng init(22);
  model.InitializeParameters(init);
  const double acc = EvaluateAccuracy(model, *data);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
  Result<Dataset> empty = Dataset::Create(3, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(EvaluateAccuracy(model, *empty), 0.0);
}

TEST(MetricsTest, MseAndMaeAgreeOnConstantError) {
  Result<Dataset> data = Dataset::Create(1, 0);
  ASSERT_TRUE(data.ok());
  for (int i = 0; i < 10; ++i) data->Append({0.0f}, 2.0f);
  LinearRegression model(1);  // all-zero params -> predicts 0, error 2
  EXPECT_NEAR(EvaluateMse(model, *data), 4.0, 1e-6);
  EXPECT_NEAR(EvaluateMae(model, *data), 2.0, 1e-6);
}

TEST(MetricsTest, MseBetweenVectors) {
  EXPECT_DOUBLE_EQ(MseBetween({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(MseBetween({0, 0}, {3, 4}), 12.5);
  EXPECT_DOUBLE_EQ(MseBetween({}, {}), 0.0);
}

}  // namespace
}  // namespace fedshap
