#include "core/ipss.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

TEST(IpssKStarTest, MatchesDefinition) {
  // n=4: cumulative 1, 5, 11, 15, 16.
  EXPECT_EQ(IpssKStar(4, 0), -1);
  EXPECT_EQ(IpssKStar(4, 1), 0);
  EXPECT_EQ(IpssKStar(4, 4), 0);
  EXPECT_EQ(IpssKStar(4, 5), 1);
  EXPECT_EQ(IpssKStar(4, 10), 1);  // the paper's Example 3
  EXPECT_EQ(IpssKStar(4, 11), 2);
  EXPECT_EQ(IpssKStar(4, 15), 3);
  EXPECT_EQ(IpssKStar(4, 16), 4);
  EXPECT_EQ(IpssKStar(4, 1000), 4);
}

TEST(IpssKStarTest, PaperTableThreeConfigs) {
  // Table III: n=3 -> gamma=5; n=6 -> gamma=8; n=10 -> gamma=32.
  EXPECT_EQ(IpssKStar(3, 5), 1);
  EXPECT_EQ(IpssKStar(6, 8), 1);
  EXPECT_EQ(IpssKStar(10, 32), 1);
}

TEST(BalancedSampleTest, SizeAndDistinctness) {
  Rng rng(1);
  std::vector<Coalition> sample = BalancedCoalitionSample(6, 3, 10, rng);
  EXPECT_EQ(sample.size(), 10u);
  for (size_t a = 0; a < sample.size(); ++a) {
    EXPECT_EQ(sample[a].Count(), 3);
    for (size_t b = a + 1; b < sample.size(); ++b) {
      EXPECT_NE(sample[a], sample[b]);
    }
  }
}

TEST(BalancedSampleTest, CoverageNearlyEqual) {
  // Constraint (3): per-client coverage C_i as equal as possible.
  Rng rng(2);
  const int n = 8, size = 3, count = 16;
  std::vector<Coalition> sample =
      BalancedCoalitionSample(n, size, count, rng);
  ASSERT_EQ(sample.size(), static_cast<size_t>(count));
  std::vector<int> coverage(n, 0);
  for (const Coalition& c : sample) {
    c.ForEach([&](int i) { ++coverage[i]; });
  }
  const int min_cov = *std::min_element(coverage.begin(), coverage.end());
  const int max_cov = *std::max_element(coverage.begin(), coverage.end());
  // 16 * 3 / 8 = 6 per client exactly; allow slack of 1 for the greedy.
  EXPECT_LE(max_cov - min_cov, 1);
}

TEST(BalancedSampleTest, StopsWhenStratumExhausted) {
  Rng rng(3);
  // C(4, 2) = 6 sets exist; asking for 50 returns at most 6.
  std::vector<Coalition> sample = BalancedCoalitionSample(4, 2, 50, rng);
  EXPECT_LE(sample.size(), 6u);
  EXPECT_GE(sample.size(), 5u);  // greedy should find nearly all
}

TEST(IpssTest, BudgetIsRespected) {
  for (int gamma : {5, 10, 20, 32}) {
    const int n = 6;
    TableUtility table = RandomTable(n, 100 + gamma);
    UtilityCache cache(&table);
    UtilitySession session(&cache);
    IpssConfig config;
    config.total_rounds = gamma;
    Result<ValuationResult> result = IpssShapley(session, config);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->num_trainings, static_cast<size_t>(gamma));
  }
}

TEST(IpssTest, LargeBudgetReproducesExactSv) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 5;
    TableUtility table = RandomTable(n, seed);
    UtilityCache cache(&table);
    UtilitySession ipss_session(&cache), exact_session(&cache);
    IpssConfig config;
    config.total_rounds = 1 << n;  // gamma = 2^n -> k* = n
    Result<ValuationResult> ipss = IpssShapley(ipss_session, config);
    Result<ValuationResult> exact = ExactShapleyMc(exact_session);
    ASSERT_TRUE(ipss.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_LT(testing_util::MaxAbsDiff(ipss->values, exact->values), 1e-10);
  }
}

TEST(IpssTest, SmallBudgetAccurateOnMonotoneUtility) {
  // The headline claim: on FL-like (monotone, diminishing-returns)
  // utilities a tiny budget gives a small relative error.
  const int n = 10;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  UtilitySession ipss_session(&cache);
  IpssConfig config;
  config.total_rounds = 32;  // Table III's n=10 budget
  Result<ValuationResult> ipss = IpssShapley(ipss_session, config);
  ASSERT_TRUE(ipss.ok());
  EXPECT_LT(RelativeL2Error(exact->values, ipss->values), 0.45);
  EXPECT_GT(SpearmanCorrelation(exact->values, ipss->values), 0.9);
}

TEST(IpssTest, PaperExampleThreeSetup) {
  // Example 3: n=4, gamma=10 -> k*=1; 5 exhaustive evals (sizes 0..1) and
  // up to 5 sampled pairs of size 2.
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  IpssConfig config;
  config.total_rounds = 10;
  config.seed = 4;
  Result<ValuationResult> result = IpssShapley(session, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->num_trainings, 10u);
  EXPECT_GE(result->num_trainings, 5u);
  for (double v : result->values) EXPECT_TRUE(std::isfinite(v));
}

TEST(IpssTest, DeterministicForSameSeed) {
  const int n = 7;
  TableUtility table = RandomTable(n, 77);
  UtilityCache cache(&table);
  IpssConfig config;
  config.total_rounds = 16;
  config.seed = 123;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = IpssShapley(s1, config);
  Result<ValuationResult> r2 = IpssShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(IpssTest, NullPlayerGetsNearZero) {
  // Client 5 contributes nothing; IPSS must assign it ~0 even at small
  // budgets (no-free-riders in practice).
  const int n = 6;
  Result<TableUtility> table =
      TableUtility::FromFunction(n, [](const Coalition& c) {
        double mass = 0.0;
        c.ForEach([&](int i) {
          if (i != 5) mass += 1.0 / (1.0 + i);
        });
        return 1.0 - std::exp(-mass);
      });
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession session(&cache);
  IpssConfig config;
  config.total_rounds = 12;
  Result<ValuationResult> result = IpssShapley(session, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->values[5], 0.0, 1e-9);
  EXPECT_GT(result->values[0], 0.05);
}

TEST(IpssTest, SymmetricClientsGetEqualValuesAtFullCoverage) {
  // With gamma covering strata 0..2 fully for n=4 (1+4+6=11), symmetric
  // clients 1 and 2 receive identical estimates.
  const int n = 4;
  Result<TableUtility> table =
      TableUtility::FromFunction(n, [](const Coalition& c) {
        const int count_12 = c.Contains(1) + c.Contains(2);
        return 0.4 * c.Contains(0) + 0.25 * count_12 + 0.1 * c.Contains(3);
      });
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession session(&cache);
  IpssConfig config;
  config.total_rounds = 11;  // k* = 2, no partial stratum
  Result<ValuationResult> result = IpssShapley(session, config);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->values[1], result->values[2], 1e-10);
}

TEST(IpssTest, BeatsUniformStratifiedAtEqualBudgetOnMonotone) {
  // Ablation (the design choice IPSS embodies): importance-pruned spending
  // of gamma beats the plain stratified spread on FL-shaped utilities.
  const int n = 10;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const int gamma = 32;
  double ipss_error = 0.0;
  double stratified_error = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    UtilitySession ipss_session(&cache);
    IpssConfig ipss_config;
    ipss_config.total_rounds = gamma;
    ipss_config.seed = 500 + t;
    Result<ValuationResult> ipss = IpssShapley(ipss_session, ipss_config);
    ASSERT_TRUE(ipss.ok());
    ipss_error += RelativeL2Error(exact->values, ipss->values);

    UtilitySession strat_session(&cache);
    StratifiedConfig strat_config;
    strat_config.total_rounds = gamma;
    strat_config.seed = 500 + t;
    Result<ValuationResult> strat =
        StratifiedSamplingShapley(strat_session, strat_config);
    ASSERT_TRUE(strat.ok());
    stratified_error += RelativeL2Error(exact->values, strat->values);
  }
  EXPECT_LT(ipss_error / trials, stratified_error / trials);
}

TEST(AdaptiveIpssTest, ConvergesAndStaysWithinCeiling) {
  const int n = 8;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  AdaptiveIpssConfig config;
  config.initial_rounds = 8;
  config.max_rounds = 256;  // 2^8 = exhaustive
  config.tolerance = 0.02;
  Result<ValuationResult> adaptive = AdaptiveIpssShapley(session, config);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_LE(adaptive->num_trainings, 256u);

  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());
  // Converged estimate is close to the truth on FL-shaped utilities.
  EXPECT_LT(RelativeL2Error(exact->values, adaptive->values), 0.2);
}

TEST(AdaptiveIpssTest, ZeroToleranceRunsToMaxAndIsExact) {
  const int n = 5;
  TableUtility table = RandomTable(n, 21);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  AdaptiveIpssConfig config;
  config.initial_rounds = 2;
  config.max_rounds = 1 << n;
  config.tolerance = 0.0;
  Result<ValuationResult> adaptive = AdaptiveIpssShapley(session, config);
  ASSERT_TRUE(adaptive.ok());
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(adaptive->values, exact->values),
            1e-10);
}

TEST(AdaptiveIpssTest, ChargesDoublingsOnlyOnce) {
  // IPSS budgets are nested (exhaustive prefixes), so the distinct
  // coalition count of the whole adaptive run stays near the final
  // budget's count.
  const int n = 7;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  AdaptiveIpssConfig config;
  config.initial_rounds = 4;
  config.max_rounds = 64;
  config.tolerance = 0.0;  // force all doublings
  Result<ValuationResult> adaptive = AdaptiveIpssShapley(session, config);
  ASSERT_TRUE(adaptive.ok());
  // 4 + 8 + 16 + 32 + 64 evaluations would be 124 without reuse; nested
  // structure keeps distinct coalitions well below that.
  EXPECT_LE(adaptive->num_trainings, 90u);
}

TEST(AdaptiveIpssTest, Validation) {
  TableUtility table = RandomTable(3, 23);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  AdaptiveIpssConfig config;
  config.initial_rounds = 0;
  EXPECT_FALSE(AdaptiveIpssShapley(session, config).ok());
  config.initial_rounds = 16;
  config.max_rounds = 8;
  EXPECT_FALSE(AdaptiveIpssShapley(session, config).ok());
  config.max_rounds = 32;
  config.tolerance = -1.0;
  EXPECT_FALSE(AdaptiveIpssShapley(session, config).ok());
}

TEST(IpssTest, Validation) {
  TableUtility table = RandomTable(3, 5);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  IpssConfig config;
  config.total_rounds = 0;
  EXPECT_FALSE(IpssShapley(session, config).ok());
}

TEST(IpssTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(10, 21);
  UtilityCache cache(&table);
  IpssConfig config;
  config.total_rounds = 60;
  config.seed = 7;

  UtilitySession sequential(&cache);
  Result<ValuationResult> reference = IpssShapley(sequential, config);
  ASSERT_TRUE(reference.ok());

  // Same cache: the pooled run must produce bit-identical estimates and
  // identical per-run accounting (charged costs come from shared records).
  ThreadPool pool(4);
  UtilitySession batched(&cache, &pool);
  Result<ValuationResult> parallel = IpssShapley(batched, config);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->values, reference->values);
  EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
  EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
  EXPECT_DOUBLE_EQ(parallel->charged_seconds, reference->charged_seconds);
}
}  // namespace
}  // namespace fedshap
