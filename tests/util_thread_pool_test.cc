#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.ParallelFor(257, [&](int i) { touched[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeCounts) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  pool.ParallelFor(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  std::vector<int> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);  // inline execution preserves order
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(50, [&](int i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 10 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace fedshap
