#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> touched(257);
  pool.ParallelFor(257, [&](int i) { touched[i].fetch_add(1); });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroAndNegativeCounts) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  pool.ParallelFor(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  std::vector<int> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(order, expected);  // inline execution preserves order
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int batch = 0; batch < 10; ++batch) {
    pool.ParallelFor(50, [&](int i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 10 * (49 * 50 / 2));
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, DestructionWithPendingWorkCompletes) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
  }  // destructor joins workers
  EXPECT_EQ(counter.load(), 20);
}

TEST(TaskGroupTest, WaitsOnlyForOwnTasks) {
  ThreadPool pool(4);
  std::atomic<int> own{0};
  std::atomic<bool> release_other{false};
  // A long-running foreign task occupies the pool...
  pool.Submit([&release_other] {
    while (!release_other.load()) std::this_thread::yield();
  });
  // ...while the group's own short tasks complete and Wait returns
  // without waiting for the foreign task (WaitIdle would hang here).
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([&own] { own.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(own.load(), 8);
  release_other.store(true);
  pool.WaitIdle();
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  TaskGroup group(nullptr);
  int runs = 0;
  group.Run([&runs] { ++runs; });
  group.Run([&runs] { ++runs; });
  group.Wait();
  EXPECT_EQ(runs, 2);
}

TEST(TaskGroupTest, ConcurrentGroupsShareOnePoolWithoutCrosstalk) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &total] {
      TaskGroup group(&pool);
      for (int i = 0; i < 16; ++i) {
        group.Run([&total] { total.fetch_add(1); });
      }
      group.Wait();
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 64);
}

// Regression: ParallelFor used to wait for the whole pool to go idle, so
// an unrelated long-running task made it block indefinitely. It now waits
// on a per-call TaskGroup and returns as soon as its own indices finish.
TEST(ThreadPoolTest, ParallelForIgnoresForeignTasks) {
  ThreadPool pool(4);
  std::atomic<bool> release_other{false};
  pool.Submit([&release_other] {
    while (!release_other.load()) std::this_thread::yield();
  });
  std::atomic<int> covered{0};
  pool.ParallelFor(32, [&covered](int) { covered.fetch_add(1); });
  EXPECT_EQ(covered.load(), 32);  // returned while the blocker still runs
  release_other.store(true);
  pool.WaitIdle();
}

// Regression: calling ParallelFor from inside one of the pool's own
// worker threads used to deadlock once every worker was occupied (each
// nested call waited for tasks no free worker could run). Nested calls
// now detect their own pool and run inline.
TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  // Outer fan-out occupies every worker; each body nests another
  // ParallelFor on the same pool.
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(8, [&inner_total](int) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersDoNotCrosstalk) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &total] {
      pool.ParallelFor(25, [&total](int) { total.fetch_add(1); });
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(total.load(), 4 * 25);
}

TEST(WorkerBudgetTest, GrantsUpToTotalAndReleases) {
  WorkerBudget budget(4);
  EXPECT_EQ(budget.total(), 4);
  EXPECT_EQ(budget.TryAcquire(3), 3);
  EXPECT_EQ(budget.in_use(), 3);
  EXPECT_EQ(budget.TryAcquire(3), 1);  // only one slot left
  EXPECT_EQ(budget.TryAcquire(1), 0);  // exhausted: callers go sequential
  budget.Release(1);
  EXPECT_EQ(budget.TryAcquire(5), 1);
  budget.Release(3);
  budget.Release(1);
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(WorkerBudgetTest, LeaseIsScoped) {
  WorkerBudget budget(2);
  {
    WorkerBudget::Lease outer(budget, 2);
    EXPECT_EQ(outer.granted(), 2);
    WorkerBudget::Lease nested(budget, 2);
    // The nested layer sees a saturated budget: the oversubscription
    // guard that keeps TrainFedAvg sequential under EvaluateBatch.
    EXPECT_EQ(nested.granted(), 0);
  }
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(WorkerBudgetTest, ZeroAndNegativeWantedAreNoops) {
  WorkerBudget budget(2);
  EXPECT_EQ(budget.TryAcquire(0), 0);
  EXPECT_EQ(budget.TryAcquire(-3), 0);
  budget.Release(0);
  budget.Release(-1);
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(WorkerBudgetTest, TotalClampedToOne) {
  WorkerBudget budget(0);
  EXPECT_EQ(budget.total(), 1);
  budget.SetTotal(-5);
  EXPECT_EQ(budget.total(), 1);
}

// Regression: releasing more slots than were acquired used to drive
// in_use_ negative, silently inflating every later TryAcquire grant. The
// debug build now fails loudly; the release build clamps at zero.
TEST(WorkerBudgetTest, OverReleaseIsCaught) {
  WorkerBudget budget(4);
  EXPECT_EQ(budget.TryAcquire(1), 1);
#ifndef NDEBUG
  EXPECT_DEATH(budget.Release(2), "");
#else
  budget.Release(2);  // clamped, not negative
  EXPECT_EQ(budget.in_use(), 0);
  EXPECT_EQ(budget.TryAcquire(100), 4);  // grants never exceed total
#endif
}

// Shrinking the budget below the outstanding lease count must not grant
// new slots (or corrupt accounting) until enough leases drain.
TEST(WorkerBudgetTest, ShrinkBelowInUseStopsGrantsUntilDrained) {
  WorkerBudget budget(4);
  EXPECT_EQ(budget.TryAcquire(3), 3);
  budget.SetTotal(2);
  EXPECT_EQ(budget.total(), 2);
  EXPECT_EQ(budget.TryAcquire(1), 0);  // 3 in use > new total
  budget.Release(1);
  EXPECT_EQ(budget.TryAcquire(1), 0);  // still at the new ceiling
  budget.Release(1);
  EXPECT_EQ(budget.TryAcquire(1), 1);  // back under: grants resume
  budget.Release(1);
  budget.Release(1);
  EXPECT_EQ(budget.in_use(), 0);
}

TEST(SharedTrainingPoolTest, IsSingletonAndUsable) {
  ThreadPool* pool = SharedTrainingPool();
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool, SharedTrainingPool());
  EXPECT_GE(pool->num_threads(), 1);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  group.Run([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace fedshap
