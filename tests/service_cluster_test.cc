// The cluster invariance suite: a coordinator ValuationService with N
// sharded workers must produce bit-identical values and exact training
// accounting versus a single-process run — at every topology, and under
// every scripted fault (worker death mid-training, dropped / duplicated
// / reordered result frames, a killed-and-recovered coordinator). This
// is the C++ home of the scenarios tests/fedshapd_restart_test.sh used
// to drive through the binary; the shell test remains as a smoke
// wrapper over fedshapd itself.

#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster_fixture.h"
#include "service/cluster.h"
#include "service/cluster_worker.h"
#include "service/job_spec.h"
#include "service/valuation_service.h"
#include "util/coalition.h"
#include "util/framing.h"
#include "util/tcp_transport.h"

namespace fedshap {
namespace {

std::string StateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fedshap_cluster_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ScenarioSpec LinregScenario(int n, uint64_t seed = 11) {
  ScenarioSpec scenario;
  scenario.kind = "linreg";
  scenario.n = n;
  scenario.seed = seed;
  return scenario;
}

JobSpec MakeJob(const std::string& name, EstimatorKind estimator,
                const ScenarioSpec& scenario, int gamma = 24, int chunk = 4) {
  JobSpec spec;
  spec.name = name;
  spec.estimator = estimator;
  spec.gamma = gamma;
  spec.seed = 5;
  spec.checkpoint_every = chunk;
  spec.scenario = scenario;
  return spec;
}

/// The clusterless baseline: one job in a private single-worker
/// in-memory service.
Coalition FromMask(uint32_t mask) {
  Coalition coalition;
  for (int i = 0; i < 32; ++i) {
    if ((mask >> i) & 1u) coalition.Add(i);
  }
  return coalition;
}

ValuationResult RunIsolated(const JobSpec& spec) {
  ServiceConfig config;
  config.workers = 1;
  ValuationService service(config);
  EXPECT_TRUE(service.Submit(spec).ok());
  Result<ValuationResult> result = service.Wait(spec.name);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : ValuationResult{};
}

// ---------------------------------------------------------------------------
// The invariance property: cluster == single process, bit for bit
// ---------------------------------------------------------------------------

// {1,2,4} workers x {ipss, adaptive-neyman stratified, perm-mc} x
// prefetch {off, 8}: every combination must reproduce the isolated
// run's values bitwise, with identical evaluation/training/fresh
// counts (the coordinator cache is authoritative for accounting, so a
// cold cluster run trains exactly the isolated run's distinct
// coalitions — on the workers).
TEST(ClusterInvarianceTest, BitIdenticalAcrossTopologiesEstimatorsPrefetch) {
  struct EstimatorCase {
    const char* tag;
    EstimatorKind kind;
    const char* allocation;  // nullptr = spec default
  };
  const EstimatorCase estimators[] = {
      {"ipss", EstimatorKind::kIpss, nullptr},
      {"neyman", EstimatorKind::kStratified, "neyman"},
      {"permmc", EstimatorKind::kPermMc, nullptr},
  };
  const ScenarioSpec scenario = LinregScenario(8);
  for (const EstimatorCase& est : estimators) {
    for (int prefetch : {0, 8}) {
      JobSpec job = MakeJob("job", est.kind, scenario);
      if (est.allocation != nullptr) job.allocation = est.allocation;
      job.prefetch = prefetch;
      const ValuationResult reference = RunIsolated(job);
      ASSERT_EQ(reference.values.size(), 8u);
      for (int workers : {1, 2, 4}) {
        ClusterFixture::Options options;
        options.num_workers = workers;
        auto fixture = ClusterFixture::Start(options);
        ASSERT_NE(fixture, nullptr);
        Result<ValuationResult> result = fixture->Run(job);
        ASSERT_TRUE(result.ok()) << result.status();
        const std::string topology = std::string(est.tag) + " prefetch=" +
                                     std::to_string(prefetch) + " workers=" +
                                     std::to_string(workers);
        ExpectBitIdentical(reference, *result, topology);
        const ClusterStats stats = fixture->cluster_stats();
        // Every fresh training ran remotely, none twice.
        EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings)
            << topology;
        EXPECT_EQ(stats.worker_fresh_trainings, reference.num_fresh_trainings)
            << topology;
        EXPECT_EQ(stats.workers_lost, 0u) << topology;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fault scripts: the scenarios the harness exists for
// ---------------------------------------------------------------------------

// A worker dies mid-job after its 3rd fresh training (kill-worker fault
// = channel torn down with no store flush, the simulated crash). The
// dispatcher reassigns its in-flight coalition, subsequent shard-0
// coalitions fail over to the surviving worker, and the job finishes
// bit-identical with exact fresh accounting — the dead worker's lost
// partial work is invisible because the coordinator cache, not the
// workers, counts fresh trainings.
TEST(ClusterFaultTest, WorkerDeathReassignsAndStaysBitIdentical) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fault_specs = {"kill-worker:after=3"};
  options.heartbeat_timeout_ms = 1000;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "worker-death");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_EQ(stats.workers_lost, 1u);
  EXPECT_GE(stats.reassigned_coalitions, 1u);
  EXPECT_EQ(fixture->cluster().dispatcher()->live_workers(), 1u);
  // Exactly-once application: one result per fresh training, even
  // though the dying worker's in-flight coalition was dispatched twice.
  EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
  EXPECT_GT(stats.tasks_dispatched, stats.results_applied);
}

// Every worker death in sequence until one remains; the job must still
// finish bit-identical (the last shard serves every coalition).
TEST(ClusterFaultTest, CascadingWorkerDeathsConvergeOnLastShard) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 4;
  options.fault_specs = {"kill-worker:after=1", "kill-worker:after=2",
                         "kill-worker:after=3"};
  options.heartbeat_timeout_ms = 1000;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "cascading-deaths");
  EXPECT_EQ(fixture->cluster_stats().workers_lost, 3u);
  EXPECT_EQ(fixture->cluster().dispatcher()->live_workers(), 1u);
}

// A result frame delivered twice (dup-frame fault): the second copy hits
// a completed task id and is dropped — results_applied stays exactly the
// fresh-training count and accounting does not double.
TEST(ClusterFaultTest, DuplicateDeliveryAppliesExactlyOnce) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fault_specs = {"dup-frame:nth=2", "dup-frame:nth=4"};
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "dup-frame");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_GE(stats.duplicate_results_ignored, 1u);
  EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
}

// A dropped result frame (drop-frame fault): the task timeout re-sends
// the assignment, the worker's cache turns the re-run into a hit, and
// the job completes bit-identical — the lost frame costs one retry, not
// correctness.
TEST(ClusterFaultTest, DroppedResultFrameRecoveredByRetry) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fault_specs = {"drop-frame:nth=2"};
  options.task_retry_ms = 200;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "drop-frame");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_GE(stats.retried_tasks, 1u);
  EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
}

// Reordered result frames (reorder-frame fault holds frames back and
// flushes them behind later sends / idle beats): arrival order is not
// plan order, values must not care.
TEST(ClusterFaultTest, ReorderedResultFramesDoNotChangeValues) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fault_specs = {"reorder-frame:p=0.3,seed=9",
                         "reorder-frame:p=0.3,seed=10"};
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "reorder-frame");
}

// ---------------------------------------------------------------------------
// Subprocess workers: real process deaths
// ---------------------------------------------------------------------------

// Fork-mode cluster at the dispatcher level: SIGKILL one child worker
// between evaluations, then keep evaluating. Coalitions homed on the
// dead shard probe over to the survivor; every evaluation still
// returns the exact utility (linreg is closed-form, so the expected
// value is recomputable locally).
TEST(ClusterSubprocessTest, SigkilledWorkerFailsOverToSurvivor) {
  const ScenarioSpec scenario = LinregScenario(6);
  Result<std::unique_ptr<UtilityFunction>> local = scenario.Build();
  ASSERT_TRUE(local.ok()) << local.status();

  LocalClusterOptions options;
  options.num_workers = 2;
  options.fork_workers = true;
  options.dispatcher.heartbeat_timeout_ms = 1000;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  (*cluster)->dispatcher()->RegisterWorkload("w", scenario,
                                             (*local)->Fingerprint());

  auto evaluate_all = [&](int count) {
    for (uint32_t mask = 1; mask <= static_cast<uint32_t>(count); ++mask) {
      const Coalition coalition = FromMask(mask);
      Result<UtilityRecord> remote =
          (*cluster)->dispatcher()->Evaluate("w", coalition);
      ASSERT_TRUE(remote.ok()) << remote.status();
      Result<double> expected = (*local)->Evaluate(coalition);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(remote->utility, *expected) << "mask " << mask;
    }
  };
  evaluate_all(10);
  EXPECT_EQ((*cluster)->dispatcher()->live_workers(), 2u);

  (*cluster)->KillWorker(0);  // real SIGKILL on the child process
  evaluate_all(20);           // includes shard-0 coalitions -> failover
  EXPECT_EQ((*cluster)->dispatcher()->live_workers(), 1u);
  EXPECT_EQ((*cluster)->dispatcher()->stats().workers_lost, 1u);
  (*cluster)->Shutdown();
}

// The full acceptance scenario through subprocess workers: 2 fork()ed
// workers, one scripted to die mid-job, versus the isolated run.
TEST(ClusterSubprocessTest, ForkedWorkerDeathStaysBitIdentical) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fork_workers = true;
  options.fault_specs = {"kill-worker:after=3"};
  options.heartbeat_timeout_ms = 1000;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "forked-worker-death");
  EXPECT_EQ(fixture->cluster_stats().workers_lost, 1u);
  EXPECT_GE(fixture->cluster_stats().reassigned_coalitions, 1u);
}

// ---------------------------------------------------------------------------
// Coordinator kill + recover (the restart_test.sh resume scenario)
// ---------------------------------------------------------------------------

// The coordinator halts mid-job (max_slices hook = the deterministic
// stand-in for kill -9 on fedshapd), its cluster dies with it; a new
// coordinator over a fresh cluster recovers the checkpoint and resumes
// to the bit-identical result. Worker stores are per-incarnation here —
// recovery correctness must come from the coordinator's own checkpoint
// + store tier, never from worker-side state.
TEST(ClusterRecoveryTest, CoordinatorKillRecoverResumesBitIdentical) {
  const std::string dir = StateDir("recover");
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8), 32);
  const ValuationResult reference = RunIsolated(job);

  {
    ClusterFixture::Options options;
    options.num_workers = 2;
    options.state_dir = dir;
    options.max_slices = 2;  // halt with the job mid-sweep
    auto fixture = ClusterFixture::Start(options);
    ASSERT_NE(fixture, nullptr);
    ASSERT_TRUE(fixture->service().Submit(job).ok());
    EXPECT_FALSE(fixture->service().WaitAll());  // halted, job unfinished
  }

  {
    ClusterFixture::Options options;
    options.num_workers = 2;
    options.state_dir = dir;
    auto fixture = ClusterFixture::Start(options);
    ASSERT_NE(fixture, nullptr);
    ASSERT_TRUE(fixture->service().Recover().ok());
    ASSERT_TRUE(fixture->service().WaitAll());
    Result<ValuationResult> result = fixture->service().Wait(job.name);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->values.size(), reference.values.size());
    for (size_t i = 0; i < reference.values.size(); ++i) {
      EXPECT_EQ(result->values[i], reference.values[i]) << "client " << i;
    }
    // Trainings done before the kill were persisted by the coordinator
    // store tier, so the resumed run recomputes strictly fewer fresh.
    // (A resumed session accounts only the post-checkpoint portion, so
    // its counters are bounded by the uninterrupted run's, not equal.)
    EXPECT_LT(result->num_fresh_trainings, reference.num_fresh_trainings);
    EXPECT_LE(result->num_trainings, reference.num_trainings);
  }
}

// Worker stores shared across cluster incarnations: a second cluster
// over the same store_dir serves every coalition read-through, zero
// worker-side retraining.
TEST(ClusterRecoveryTest, WorkerStoreTierSurvivesClusterRestart) {
  const std::string dir = StateDir("stores");
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  ValuationResult first;
  {
    ClusterFixture::Options options;
    options.num_workers = 2;
    options.store_dir = dir + "/workers";
    auto fixture = ClusterFixture::Start(options);
    ASSERT_NE(fixture, nullptr);
    Result<ValuationResult> result = fixture->Run(job);
    ASSERT_TRUE(result.ok()) << result.status();
    first = std::move(result).value();
    EXPECT_EQ(fixture->cluster_stats().worker_fresh_trainings,
              first.num_fresh_trainings);
  }
  {
    ClusterFixture::Options options;
    options.num_workers = 2;
    options.store_dir = dir + "/workers";
    auto fixture = ClusterFixture::Start(options);
    ASSERT_NE(fixture, nullptr);
    Result<ValuationResult> result = fixture->Run(job);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectBitIdentical(first, *result, "restarted-store-tier");
    // The coordinator cache was cold (fresh == first run's), but every
    // worker training was a store hit: zero worker-side fresh work.
    EXPECT_EQ(fixture->cluster_stats().worker_fresh_trainings, 0u);
  }
}

// ---------------------------------------------------------------------------
// Dispatcher edge semantics
// ---------------------------------------------------------------------------

TEST(ClusterDispatcherTest, EvaluateFailsCleanlyWithNoLiveWorkers) {
  const ScenarioSpec scenario = LinregScenario(4);
  Result<std::unique_ptr<UtilityFunction>> local = scenario.Build();
  ASSERT_TRUE(local.ok());

  LocalClusterOptions options;
  options.num_workers = 1;
  options.dispatcher.heartbeat_timeout_ms = 1000;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  (*cluster)->dispatcher()->RegisterWorkload("w", scenario,
                                             (*local)->Fingerprint());
  (*cluster)->KillWorker(0);
  // The lone worker is gone: evaluation must fail with a clear error,
  // not hang. (The dispatcher may need a beat to observe the EOF.)
  Result<UtilityRecord> record =
      (*cluster)->dispatcher()->Evaluate("w", Coalition::Of({0, 1}));
  EXPECT_FALSE(record.ok());
  (*cluster)->Shutdown();
}

TEST(ClusterDispatcherTest, UnknownWorkloadIsAnError) {
  LocalClusterOptions options;
  options.num_workers = 1;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(options);
  ASSERT_TRUE(cluster.ok()) << cluster.status();
  Result<UtilityRecord> record =
      (*cluster)->dispatcher()->Evaluate("nope", Coalition::Of({0}));
  EXPECT_FALSE(record.ok());
  (*cluster)->Shutdown();
}

// ---------------------------------------------------------------------------
// TCP transport: the same invariance, over real sockets
// ---------------------------------------------------------------------------

// The core invariance over loopback TCP at {1,2,4} workers: the framed
// protocol is transport-agnostic, so swapping socketpairs for the real
// listener/connector + registration handshake must change nothing about
// the values.
TEST(ClusterTcpTest, BitIdenticalOverTcpAcrossTopologies) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);
  for (int workers : {1, 2, 4}) {
    ClusterFixture::Options options;
    options.num_workers = workers;
    options.transport = ClusterTransport::kTcp;
    auto fixture = ClusterFixture::Start(options);
    ASSERT_NE(fixture, nullptr);
    Result<ValuationResult> result = fixture->Run(job);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectBitIdentical(reference, *result,
                       "tcp workers=" + std::to_string(workers));
    const ClusterStats stats = fixture->cluster_stats();
    EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
    EXPECT_EQ(stats.worker_reconnects, 0u);
  }
}

// Fork-mode workers over TCP: separate processes dialing the
// coordinator's real listener — the closest the single-host harness gets
// to an actual multi-node deployment.
TEST(ClusterTcpTest, ForkedWorkersOverTcpStayBitIdentical) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 2;
  options.fork_workers = true;
  options.transport = ClusterTransport::kTcp;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "tcp-forked");
  EXPECT_EQ(fixture->cluster_stats().results_applied,
            reference.num_fresh_trainings);
}

// An injected partition mid-job tears the lone worker's connection
// down; the worker redials with backoff, re-registers its shard (warm
// caches), the orphaned in-flight coalition is re-dispatched, and the
// job finishes bit-identical. A single worker plus a long degraded
// grace makes the reconnect load-bearing: the job cannot complete any
// other way, so the partition costs a reconnect, never correctness.
TEST(ClusterTcpFaultTest, PartitionAndHealStaysBitIdentical) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 1;
  options.transport = ClusterTransport::kTcp;
  options.fault_specs = {"partition:nth=3"};
  options.heartbeat_timeout_ms = 2000;
  options.task_retry_ms = 200;
  options.degraded_grace_ms = 10000;  // wait for the heal, don't degrade
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "tcp-partition-heal");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_GE(stats.worker_reconnects, 1u);
  EXPECT_GE(stats.recovery_seconds_total, 0.0);
  EXPECT_EQ(stats.degraded_evaluations, 0u);
  EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
}

// A corrupted result frame is rejected by the coordinator's CRC check,
// which reads as a dead peer: the connection is torn down, the worker
// reconnects, the task is re-dispatched. Corruption can cost a round
// trip, never a wrong value.
TEST(ClusterTcpFaultTest, CorruptFrameRejectedAndRecovered) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 1;
  options.transport = ClusterTransport::kTcp;
  options.fault_specs = {"corrupt-frame:nth=2"};
  options.heartbeat_timeout_ms = 2000;
  options.task_retry_ms = 200;
  options.degraded_grace_ms = 10000;  // wait for the reconnect
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "tcp-corrupt-frame");
  EXPECT_GE(fixture->cluster_stats().worker_reconnects, 1u);
  EXPECT_EQ(fixture->cluster_stats().results_applied,
            reference.num_fresh_trainings);
}

// The reconnect schedule is a pure function of (attempt, seed): a client
// that cannot reach its coordinator walks exactly the backoff sequence
// ReconnectBackoffMs prescribes, in order.
TEST(ClusterTcpFaultTest, ReconnectBackoffFollowsSeededSchedule) {
  // Bind a port, then free it: every dial is refused.
  int dead_port = 0;
  {
    Result<std::unique_ptr<TcpListener>> listener =
        TcpListener::Listen({"127.0.0.1", 0});
    ASSERT_TRUE(listener.ok()) << listener.status();
    dead_port = (*listener)->port();
  }
  TcpWorkerClientOptions options;
  options.endpoint = {"127.0.0.1", dead_port};
  options.worker.shard = -1;
  options.connect_timeout_ms = 500;
  options.backoff_base_ms = 20;
  options.backoff_cap_ms = 100;
  options.backoff_seed = 77;
  options.max_connect_failures = 4;
  TcpWorkerClient client(options);
  Status status = client.Run();
  ASSERT_FALSE(status.ok());  // gave up with the dial error
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;
  EXPECT_EQ(client.reconnects(), 0u);  // never registered, so no resumes
  // Three backoffs separate the four dials; each is the scheduled wait.
  const std::vector<int> expected = {ReconnectBackoffMs(0, 20, 100, 77),
                                     ReconnectBackoffMs(1, 20, 100, 77),
                                     ReconnectBackoffMs(2, 20, 100, 77)};
  EXPECT_EQ(client.backoff_history(), expected);
}

// ---------------------------------------------------------------------------
// Circuit breaker and degraded mode
// ---------------------------------------------------------------------------

// Three consecutive dropped results exhaust their RPC deadlines and trip
// the lone worker's breaker; the cooldown elapses into a half-open
// probe, the (now healed) worker answers it, the breaker closes, and the
// job completes bit-identical with no degraded work.
TEST(ClusterBreakerTest, TripProbeCloseUnderConsecutiveDeadlineExpiry) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 1;
  options.fault_specs = {"drop-frame:until=3"};
  options.rpc_deadline_ms = 150;
  options.max_task_attempts = 8;
  options.breaker_trip_threshold = 3;
  options.breaker_cooldown_ms = 250;
  options.degraded_grace_ms = 10000;  // wait for the probe, don't degrade
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "breaker-trip-probe-close");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_GE(stats.deadline_expirations, 3u);
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GE(stats.breaker_probes, 1u);
  EXPECT_EQ(stats.degraded_evaluations, 0u);
  EXPECT_EQ(stats.results_applied, reference.num_fresh_trainings);
}

// Total outage from the start: the lone worker is killed before the job
// runs. Every evaluation passes the grace window with no schedulable
// worker, fails Unavailable, and ClusterUtility trains it on the
// coordinator instead — bit-identical values, zero remote results.
TEST(ClusterDegradedTest, TotalOutageServesBitIdenticalValuesLocally) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 1;
  options.heartbeat_timeout_ms = 500;
  options.degraded_grace_ms = 100;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  fixture->KillWorker(0);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "degraded-total-outage");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_EQ(stats.results_applied, 0u);  // nothing came from a worker
  EXPECT_GE(stats.degraded_evaluations, reference.num_fresh_trainings);
}

// Mid-job outage: the worker dies partway through. Work done before the
// death arrived remotely; everything after degrades to coordinator-local
// training. The seam between the two regimes is invisible in the values.
TEST(ClusterDegradedTest, MidJobOutageDegradesAndStaysBitIdentical) {
  JobSpec job = MakeJob("job", EstimatorKind::kIpss, LinregScenario(8));
  const ValuationResult reference = RunIsolated(job);

  ClusterFixture::Options options;
  options.num_workers = 1;
  options.fault_specs = {"kill-worker:after=2"};
  options.heartbeat_timeout_ms = 500;
  options.degraded_grace_ms = 100;
  auto fixture = ClusterFixture::Start(options);
  ASSERT_NE(fixture, nullptr);
  Result<ValuationResult> result = fixture->Run(job);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectBitIdentical(reference, *result, "degraded-mid-job");

  const ClusterStats stats = fixture->cluster_stats();
  EXPECT_EQ(stats.workers_lost, 1u);
  EXPECT_GE(stats.results_applied, 1u);       // some work ran remotely
  EXPECT_GE(stats.degraded_evaluations, 1u);  // the rest degraded
}

// ---------------------------------------------------------------------------
// Monitor deadline unification (the tick-clamp helper)
// ---------------------------------------------------------------------------

TEST(ClusterMonitorTest, NextDeadlineMsPicksTheEarliestPendingDeadline) {
  using Deadlines = ClusterDispatcher::MonitorDeadlines;
  // Nothing pending: the max tick.
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{-1, -1, -1}), 250);
  // The earliest class wins regardless of which one it is.
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{100, 50, -1}), 50);
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{40, 200, 120}), 40);
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{-1, -1, 30}), 30);
}

TEST(ClusterMonitorTest, NextDeadlineMsClampsToTickBounds) {
  using Deadlines = ClusterDispatcher::MonitorDeadlines;
  // An overdue (or absurdly small) deadline cannot spin the monitor.
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{0, -1, -1}), 10);
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{-1, 3, -1}), 10);
  // A far-future deadline cannot stall it past the heartbeat scan.
  EXPECT_EQ(ClusterDispatcher::NextDeadlineMs(Deadlines{60000, -1, -1}), 250);
}

// ---------------------------------------------------------------------------
// Registration handshake protocol
// ---------------------------------------------------------------------------

TEST(ClusterProtocolTest, WorkerRegistrationCodecRoundTrips) {
  WorkerRegistration registration;
  registration.shard = 3;
  registration.pid = 4242;
  registration.workloads = {{"linreg/8/11", 0xDEADBEEFCAFEF00DULL},
                            {"digits/4/7", 17}};
  const std::string payload = EncodeWorkerRegistration(registration);
  Result<WorkerRegistration> decoded = DecodeWorkerRegistration(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->protocol_version, kClusterProtocolVersion);
  EXPECT_EQ(decoded->shard, 3);
  EXPECT_EQ(decoded->pid, 4242u);
  EXPECT_EQ(decoded->workloads, registration.workloads);

  // The unassigned-shard sentinel survives the wire.
  registration.shard = -1;
  decoded = DecodeWorkerRegistration(EncodeWorkerRegistration(registration));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard, -1);

  EXPECT_FALSE(DecodeWorkerRegistration("").ok());
  EXPECT_FALSE(DecodeWorkerRegistration("\xff\xff\xff").ok());
}

// A worker speaking a different protocol version is vetoed at the
// handshake — a Reject frame naming the mismatch, before any workload
// state is exchanged. (Driven through the real listener.)
TEST(ClusterProtocolTest, VersionMismatchIsRejectedAtRegistration) {
  ClusterDispatcher dispatcher;
  Result<int> port = dispatcher.ListenAndServe({"127.0.0.1", 0});
  ASSERT_TRUE(port.ok()) << port.status();
  EXPECT_EQ(dispatcher.listen_port(), *port);

  Result<std::unique_ptr<FrameChannel>> channel =
      TcpConnect({"127.0.0.1", *port}, 2000);
  ASSERT_TRUE(channel.ok()) << channel.status();
  WorkerRegistration stale;
  stale.protocol_version = kClusterProtocolVersion - 1;
  ASSERT_TRUE((*channel)
                  ->Send(cluster_proto::kRegister,
                         EncodeWorkerRegistration(stale))
                  .ok());
  Result<std::optional<Frame>> reply = (*channel)->Recv(5000);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_TRUE(reply->has_value());
  EXPECT_EQ((*reply)->type, cluster_proto::kReject);
  EXPECT_EQ(dispatcher.live_workers(), 0u);
  dispatcher.Shutdown();
}

// ScenarioSpec wire codec: round-trip identity and version rejection —
// the handshake the workload announce rides on.
TEST(ClusterProtocolTest, ScenarioSpecCodecRoundTrips) {
  ScenarioSpec spec;
  spec.kind = "digits";
  spec.n = 7;
  spec.partition = "skew";
  spec.seed = 99;
  spec.fl_rounds = 5;
  spec.local_epochs = 2;
  spec.batch_size = 8;
  spec.learning_rate = 0.125;
  spec.samples_per_client = 33;
  spec.noise_scale = 0.5;

  ByteWriter writer;
  EncodeScenarioSpec(spec, writer);
  ByteReader reader(writer.bytes());
  Result<ScenarioSpec> decoded = DecodeScenarioSpec(reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->CanonicalKey(), spec.CanonicalKey());
  EXPECT_EQ(decoded->learning_rate, spec.learning_rate);
  EXPECT_EQ(decoded->noise_scale, spec.noise_scale);

  ByteWriter bad;
  bad.PutU8(99);  // unknown future version
  ByteReader bad_reader(bad.bytes());
  EXPECT_FALSE(DecodeScenarioSpec(bad_reader).ok());
}

}  // namespace
}  // namespace fedshap
