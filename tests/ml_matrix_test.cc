#include "ml/matrix.h"

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.RowPtr(1)[2], 5.0f);
}

TEST(MatrixTest, FillSetsEverything) {
  Matrix m(3, 3);
  m.Fill(2.5f);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_FLOAT_EQ(m.At(r, c), 2.5f);
  }
}

TEST(MatVecTest, MatchesManualComputation) {
  Matrix m(2, 3);
  // [[1, 2, 3], [4, 5, 6]]
  float v = 1.0f;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = v++;
  }
  const float x[3] = {1.0f, 0.0f, -1.0f};
  std::vector<float> out;
  MatVec(m, x, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], -2.0f);  // 1 - 3
  EXPECT_FLOAT_EQ(out[1], -2.0f);  // 4 - 6
}

TEST(MatTVecTest, MatchesManualComputation) {
  Matrix m(2, 3);
  float v = 1.0f;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = v++;
  }
  const float x[2] = {1.0f, 2.0f};
  std::vector<float> out;
  MatTVec(m, x, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FLOAT_EQ(out[0], 9.0f);   // 1*1 + 4*2
  EXPECT_FLOAT_EQ(out[1], 12.0f);  // 2*1 + 5*2
  EXPECT_FLOAT_EQ(out[2], 15.0f);  // 3*1 + 6*2
}

TEST(Rank1UpdateTest, AccumulatesOuterProduct) {
  Matrix m(2, 2);
  const float a[2] = {1.0f, 2.0f};
  const float b[2] = {3.0f, 4.0f};
  Rank1Update(m, 0.5f, a, b);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 4.0f);
}

TEST(SolveLinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
  Result<std::vector<double>> x =
      SolveLinearSystem({2, 1, 1, 3}, {5, 10}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(SolveLinearSystemTest, RequiresPivoting) {
  // Leading zero forces a row swap.
  Result<std::vector<double>> x =
      SolveLinearSystem({0, 1, 1, 0}, {2, 3}, 2);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveLinearSystemTest, DetectsSingularity) {
  EXPECT_FALSE(SolveLinearSystem({1, 2, 2, 4}, {1, 2}, 2).ok());
}

TEST(SolveLinearSystemTest, ValidatesShape) {
  // a not n*n (a "non-square" flat matrix) must be rejected, not solved.
  Result<std::vector<double>> bad_a = SolveLinearSystem({1, 2, 3}, {1, 2}, 2);
  ASSERT_FALSE(bad_a.ok());
  EXPECT_EQ(bad_a.status().code(), StatusCode::kInvalidArgument);
  // a larger than n*n is just as wrong as smaller.
  EXPECT_FALSE(SolveLinearSystem({1, 2, 3, 4, 5}, {1, 2}, 2).ok());
  // b must have exactly n entries.
  Result<std::vector<double>> bad_b =
      SolveLinearSystem({2, 1, 1, 3}, {5, 10, 15}, 2);
  ASSERT_FALSE(bad_b.ok());
  EXPECT_EQ(bad_b.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(SolveLinearSystem({2, 1, 1, 3}, {5}, 2).ok());
  // Non-positive dimensions are invalid regardless of buffer sizes.
  EXPECT_FALSE(SolveLinearSystem({1}, {1}, 0).ok());
  EXPECT_FALSE(SolveLinearSystem({}, {}, -3).ok());
}

TEST(SolveLinearSystemTest, LargerRandomSystemRoundTrips) {
  // Build A (diagonally dominant, hence nonsingular) and x, solve for b.
  const int n = 12;
  std::vector<double> a(n * n), x_true(n), b(n, 0.0);
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>(state >> 11) / (1ULL << 53);
  };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) a[r * n + c] = next() - 0.5;
    a[r * n + r] += n;  // dominance
    x_true[r] = next() * 2 - 1;
  }
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) b[r] += a[r * n + c] * x_true[c];
  }
  Result<std::vector<double>> x = SolveLinearSystem(a, b, n);
  ASSERT_TRUE(x.ok());
  for (int i = 0; i < n; ++i) EXPECT_NEAR((*x)[i], x_true[i], 1e-9);
}

}  // namespace
}  // namespace fedshap
