#include "data/partition.h"

#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedshap {
namespace {

Dataset MakeClassified(size_t rows, int classes, uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> data = GenerateBlobs(classes, 4, 5.0, rows, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(PartitionTest, SameSizeSameDistEqualSizes) {
  Dataset data = MakeClassified(1000, 4, 1);
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeSameDist;
  config.num_clients = 8;
  Rng rng(2);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  ASSERT_EQ(clients->size(), 8u);
  for (const Dataset& c : *clients) EXPECT_EQ(c.size(), 125u);
}

TEST(PartitionTest, SameDistLabelProportionsClose) {
  Dataset data = MakeClassified(4000, 4, 3);
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeSameDist;
  config.num_clients = 4;
  Rng rng(4);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  for (const Dataset& c : *clients) {
    std::vector<size_t> histogram = c.ClassHistogram();
    for (size_t count : histogram) {
      // ~250 per class per client; random split keeps it near-uniform.
      EXPECT_NEAR(static_cast<double>(count), 250.0, 60.0);
    }
  }
}

TEST(PartitionTest, DiffSizeRatios) {
  Dataset data = MakeClassified(1100, 2, 5);
  PartitionConfig config;
  config.scheme = PartitionScheme::kDiffSizeSameDist;
  config.num_clients = 4;
  Rng rng(6);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  ASSERT_EQ(clients->size(), 4u);
  // Sizes approximately 1:2:3:4 of 1100 -> 110, 220, 330, 440.
  EXPECT_NEAR((*clients)[0].size(), 110.0, 2.0);
  EXPECT_NEAR((*clients)[1].size(), 220.0, 2.0);
  EXPECT_NEAR((*clients)[2].size(), 330.0, 2.0);
  EXPECT_NEAR((*clients)[3].size(), 440.0, 2.0);
  size_t total = 0;
  for (const Dataset& c : *clients) total += c.size();
  EXPECT_LE(total, 1100u);
}

TEST(PartitionTest, LabelSkewCreatesDominantClass) {
  Dataset data = MakeClassified(3000, 3, 7);
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeDiffDist;
  config.num_clients = 3;
  config.label_skew = 0.7;
  Rng rng(8);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  for (int i = 0; i < 3; ++i) {
    const Dataset& c = (*clients)[i];
    std::vector<size_t> histogram = c.ClassHistogram();
    const int dominant = i % 3;
    const double share =
        static_cast<double>(histogram[dominant]) / c.size();
    EXPECT_GT(share, 0.5) << "client " << i;
  }
}

TEST(PartitionTest, LabelSkewRequiresClassification) {
  Rng gen(9);
  RegressionConfig reg_config;
  Result<Dataset> reg = GenerateRegression(reg_config, 100, gen);
  ASSERT_TRUE(reg.ok());
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeDiffDist;
  config.num_clients = 2;
  Rng rng(10);
  EXPECT_FALSE(PartitionDataset(*reg, config, rng).ok());
}

TEST(PartitionTest, NoisyLabelGradient) {
  Dataset data = MakeClassified(4000, 4, 11);
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeNoisyLabel;
  config.num_clients = 4;
  config.max_label_noise = 0.4;
  Rng rng(12);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  // Client 0 is clean; later clients have increasing flip rates. Estimate
  // flip rate via nearest-centroid disagreement using the clean client's
  // centroids as reference.
  const Dataset& clean = (*clients)[0];
  const int dim = clean.num_features();
  std::vector<std::vector<double>> centroid(4, std::vector<double>(dim, 0));
  std::vector<int> counts(4, 0);
  for (size_t i = 0; i < clean.size(); ++i) {
    const int label = clean.ClassLabel(i);
    for (int d = 0; d < dim; ++d) centroid[label][d] += clean.Value(i, d);
    ++counts[label];
  }
  for (int c = 0; c < 4; ++c) {
    for (int d = 0; d < dim; ++d) centroid[c][d] /= std::max(counts[c], 1);
  }
  auto disagreement = [&](const Dataset& ds) {
    int mismatches = 0;
    for (size_t i = 0; i < ds.size(); ++i) {
      double best = 1e18;
      int best_class = -1;
      for (int c = 0; c < 4; ++c) {
        double dist = 0;
        for (int d = 0; d < dim; ++d) {
          const double diff = ds.Value(i, d) - centroid[c][d];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_class = c;
        }
      }
      if (best_class != ds.ClassLabel(i)) ++mismatches;
    }
    return mismatches / static_cast<double>(ds.size());
  };
  const double clean_rate = disagreement((*clients)[0]);
  const double noisy_rate = disagreement((*clients)[3]);
  EXPECT_LT(clean_rate, 0.1);
  EXPECT_GT(noisy_rate, clean_rate + 0.15);
}

TEST(PartitionTest, NoisyFeatureGradient) {
  Dataset data = MakeClassified(2000, 2, 13);
  PartitionConfig config;
  config.scheme = PartitionScheme::kSameSizeNoisyFeature;
  config.num_clients = 5;
  config.max_feature_noise = 2.0;
  Rng rng(14);
  Result<std::vector<Dataset>> clients = PartitionDataset(data, config, rng);
  ASSERT_TRUE(clients.ok());
  // Per-feature variance should grow from client 0 (clean) to client 4.
  auto variance = [](const Dataset& ds) {
    double mean = 0, var = 0;
    const size_t count = ds.size() * ds.num_features();
    for (size_t i = 0; i < ds.size(); ++i) {
      for (int d = 0; d < ds.num_features(); ++d) mean += ds.Value(i, d);
    }
    mean /= count;
    for (size_t i = 0; i < ds.size(); ++i) {
      for (int d = 0; d < ds.num_features(); ++d) {
        var += (ds.Value(i, d) - mean) * (ds.Value(i, d) - mean);
      }
    }
    return var / count;
  };
  EXPECT_GT(variance((*clients)[4]), variance((*clients)[0]) + 1.0);
}

TEST(PartitionTest, RejectsBadArguments) {
  Dataset data = MakeClassified(100, 2, 15);
  PartitionConfig config;
  config.num_clients = 0;
  Rng rng(16);
  EXPECT_FALSE(PartitionDataset(data, config, rng).ok());
  config.num_clients = 101;  // more clients than rows
  EXPECT_FALSE(PartitionDataset(data, config, rng).ok());
}

TEST(PartitionByGroupTest, GroupsStayTogether) {
  DigitsConfig digits;
  digits.num_writers = 12;
  Rng gen(17);
  Result<FederatedSource> source = GenerateDigits(digits, 600, gen);
  ASSERT_TRUE(source.ok());
  Rng rng(18);
  Result<std::vector<Dataset>> clients = PartitionByGroup(*source, 4, rng);
  ASSERT_TRUE(clients.ok());
  ASSERT_EQ(clients->size(), 4u);
  size_t total = 0;
  for (const Dataset& c : *clients) total += c.size();
  EXPECT_EQ(total, 600u);
}

TEST(PartitionByGroupTest, NeedsEnoughGroups) {
  DigitsConfig digits;
  digits.num_writers = 2;
  Rng gen(19);
  Result<FederatedSource> source = GenerateDigits(digits, 100, gen);
  ASSERT_TRUE(source.ok());
  Rng rng(20);
  EXPECT_FALSE(PartitionByGroup(*source, 3, rng).ok());
}

TEST(FlipLabelsTest, FractionRespected) {
  Dataset data = MakeClassified(1000, 4, 21);
  Dataset original = data;
  Rng rng(22);
  ASSERT_TRUE(FlipLabels(data, 0.3, rng).ok());
  int changed = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (data.ClassLabel(i) != original.ClassLabel(i)) ++changed;
  }
  EXPECT_EQ(changed, 300);  // flips always move to a different class
}

TEST(FlipLabelsTest, ZeroAndFullFraction) {
  Dataset data = MakeClassified(100, 2, 23);
  Dataset original = data;
  Rng rng(24);
  ASSERT_TRUE(FlipLabels(data, 0.0, rng).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.ClassLabel(i), original.ClassLabel(i));
  }
  ASSERT_TRUE(FlipLabels(data, 1.0, rng).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NE(data.ClassLabel(i), original.ClassLabel(i));
  }
}

TEST(FlipLabelsTest, Validation) {
  Dataset data = MakeClassified(10, 2, 25);
  Rng rng(26);
  EXPECT_FALSE(FlipLabels(data, -0.1, rng).ok());
  EXPECT_FALSE(FlipLabels(data, 1.1, rng).ok());
}

TEST(AddFeatureNoiseTest, ScaleZeroIsIdentity) {
  Dataset data = MakeClassified(50, 2, 27);
  Dataset original = data;
  Rng rng(28);
  ASSERT_TRUE(AddFeatureNoise(data, 0.0, rng).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < data.num_features(); ++d) {
      EXPECT_FLOAT_EQ(data.Value(i, d), original.Value(i, d));
    }
  }
  EXPECT_FALSE(AddFeatureNoise(data, -1.0, rng).ok());
}

TEST(AddFeatureNoiseTest, PerturbationMagnitude) {
  Dataset data = MakeClassified(500, 2, 29);
  Dataset original = data;
  Rng rng(30);
  ASSERT_TRUE(AddFeatureNoise(data, 0.5, rng).ok());
  double total_sq = 0;
  size_t count = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < data.num_features(); ++d) {
      const double diff = data.Value(i, d) - original.Value(i, d);
      total_sq += diff * diff;
      ++count;
    }
  }
  EXPECT_NEAR(std::sqrt(total_sq / count), 0.5, 0.05);
}

}  // namespace
}  // namespace fedshap
