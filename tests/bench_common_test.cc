/// Tests for the bench harness (bench/common.h): scenario manufacturing,
/// budget table, option parsing and the algorithm runner — the machinery
/// every paper-figure binary depends on.

#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/valuation_metrics.h"

namespace fedshap {
namespace bench {
namespace {

BenchOptions TinyOptions() {
  BenchOptions options;
  options.scale = 0.15;  // shrink datasets: these are unit tests
  options.seed = 77;
  return options;
}

TEST(BenchOptionsTest, ParsesFlags) {
  const char* argv[] = {"bench", "--scale=2.5", "--seed=99"};
  BenchOptions options = BenchOptions::Parse(3, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(options.scale, 2.5);
  EXPECT_EQ(options.seed, 99u);
}

TEST(BenchOptionsTest, QuickFlagAndInvalidScale) {
  const char* quick[] = {"bench", "--quick"};
  EXPECT_DOUBLE_EQ(BenchOptions::Parse(2, const_cast<char**>(quick)).scale,
                   0.4);
  const char* bad[] = {"bench", "--scale=-3"};
  EXPECT_DOUBLE_EQ(BenchOptions::Parse(2, const_cast<char**>(bad)).scale,
                   1.0);
}

TEST(BenchOptionsTest, ParsesJsonFlag) {
  const char* argv[] = {"bench", "--json=/tmp/out.json"};
  BenchOptions options = BenchOptions::Parse(2, const_cast<char**>(argv));
  EXPECT_EQ(options.json, "/tmp/out.json");
  EXPECT_TRUE(BenchOptions().json.empty());
}

TEST(BenchJsonTest, WritesRecordsWithProvenance) {
  BenchJson json("unit_test");
  json.Add("case_a").Label("backend", "scalar").Metric("seconds", 0.5);
  json.Add("case_b").Metric("speedup", 2.0);
  EXPECT_FALSE(json.empty());
  const std::string path = ::testing::TempDir() + "bench_json_test.json";
  ASSERT_TRUE(json.WriteTo(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();
  EXPECT_NE(content.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(content.find("\"kernel_backend\""), std::string::npos);
  EXPECT_NE(content.find("\"worker_budget\""), std::string::npos);
  EXPECT_NE(content.find("\"case_a\""), std::string::npos);
  EXPECT_NE(content.find("\"speedup\": 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchJsonTest, EmptyPathIsNoop) {
  BenchJson json("unit_test");
  json.Add("x").Metric("v", 1.0);
  EXPECT_TRUE(json.WriteTo("").ok());
}

TEST(BenchOptionsTest, ScaledRowsHasFloor) {
  BenchOptions options;
  options.scale = 0.0001;
  EXPECT_EQ(options.ScaledRows(100000), 64u);
}

TEST(PaperGammaTest, TableThreeValues) {
  EXPECT_EQ(PaperGamma(3), 5);
  EXPECT_EQ(PaperGamma(6), 8);
  EXPECT_EQ(PaperGamma(10), 32);
  // Fig. 9 rule: n log2 n.
  EXPECT_EQ(PaperGamma(20), static_cast<int>(std::lround(20 * std::log2(20.0))));
}

TEST(AlgoEnumTest, NamesAndGroups) {
  EXPECT_EQ(AllAlgos().size(), 10u);
  EXPECT_EQ(SamplingAlgos().size(), 4u);
  for (Algo algo : AllAlgos()) {
    EXPECT_STRNE(AlgoName(algo), "?");
  }
}

TEST(ScenarioTest, FemnistScenarioShape) {
  Scenario scenario = MakeFemnistScenario(3, ModelKind::kLogReg,
                                          TinyOptions());
  EXPECT_EQ(scenario.n, 3);
  ASSERT_NE(scenario.utility, nullptr);
  EXPECT_NE(scenario.fedavg, nullptr);  // gradient baselines applicable
  EXPECT_EQ(scenario.utility->num_clients(), 3);
}

TEST(ScenarioTest, AdultXgbScenarioHasNoFedAvg) {
  Scenario scenario = MakeAdultScenario(3, ModelKind::kXgb, TinyOptions());
  EXPECT_EQ(scenario.fedavg, nullptr);  // gradient baselines N/A
  ASSERT_NE(scenario.utility, nullptr);
  UtilityCache cache(scenario.utility.get());
  UtilitySession session(&cache);
  Result<double> u = session.Evaluate(Coalition::Full(3));
  ASSERT_TRUE(u.ok());
  EXPECT_GE(*u, 0.0);
  EXPECT_LE(*u, 1.0);
}

TEST(ScenarioTest, SyntheticScenariosCoverAllSchemes) {
  for (PartitionScheme scheme :
       {PartitionScheme::kSameSizeSameDist,
        PartitionScheme::kSameSizeDiffDist,
        PartitionScheme::kDiffSizeSameDist,
        PartitionScheme::kSameSizeNoisyLabel,
        PartitionScheme::kSameSizeNoisyFeature}) {
    Scenario scenario = MakeSyntheticScenario(scheme, 4,
                                              ModelKind::kLogReg,
                                              TinyOptions());
    EXPECT_EQ(scenario.n, 4) << PartitionSchemeName(scheme);
    EXPECT_FALSE(scenario.description.empty());
  }
}

TEST(ScenarioTest, ScalabilityPlantsStructure) {
  ScalabilityScenario scenario = MakeScalabilityScenario(20, TinyOptions());
  EXPECT_EQ(scenario.scenario.n, 20);
  EXPECT_EQ(scenario.null_players.size(), 1u);
  EXPECT_EQ(scenario.duplicate_pairs.size(), 1u);
  // Planted null player really has no data: U(S u null) == U(S).
  UtilityCache cache(scenario.scenario.utility.get());
  UtilitySession session(&cache);
  Coalition base = Coalition::Of({0, 1, 2});
  Result<double> u_base = session.Evaluate(base);
  Result<double> u_with_null =
      session.Evaluate(base.With(scenario.null_players[0]));
  ASSERT_TRUE(u_base.ok());
  ASSERT_TRUE(u_with_null.ok());
  EXPECT_DOUBLE_EQ(*u_base, *u_with_null);
}

TEST(ScenarioRunnerTest, GroundTruthAndRunnersAgree) {
  ScenarioRunner runner(
      MakeFemnistScenario(3, ModelKind::kLogReg, TinyOptions()));
  const std::vector<double>& exact = runner.GroundTruth();
  ASSERT_EQ(exact.size(), 3u);

  // MC-Shapley run must reproduce the ground truth exactly.
  Result<AlgoRun> mc = runner.Run(Algo::kMcShapley, 5, 1);
  ASSERT_TRUE(mc.ok());
  EXPECT_TRUE(mc->exact);
  EXPECT_EQ(mc->result.values, exact);

  // Every algorithm runs without error on a FedAvg scenario.
  for (Algo algo : AllAlgos()) {
    Result<AlgoRun> run = runner.Run(algo, 5, 2);
    ASSERT_TRUE(run.ok()) << AlgoName(algo);
    EXPECT_EQ(run->result.values.size(), 3u) << AlgoName(algo);
  }
}

TEST(ScenarioRunnerTest, PermShapleyIsExtrapolated) {
  ScenarioRunner runner(
      MakeFemnistScenario(3, ModelKind::kLogReg, TinyOptions()));
  runner.GroundTruth();
  Result<AlgoRun> perm = runner.Run(Algo::kPermShapley, 5, 1);
  ASSERT_TRUE(perm.ok());
  EXPECT_TRUE(perm->estimated_time);
  EXPECT_GT(perm->result.charged_seconds, 0.0);
  EXPECT_EQ(TimeCell(*perm)[0], '~');
}

TEST(ScenarioRunnerTest, CellRenderers) {
  AlgoRun not_applicable;
  not_applicable.applicable = false;
  EXPECT_EQ(TimeCell(not_applicable), "\\");
  EXPECT_EQ(ErrorCell(not_applicable, {1.0}), "\\");

  AlgoRun exact_run;
  exact_run.exact = true;
  exact_run.result.charged_seconds = 1.0;
  EXPECT_EQ(ErrorCell(exact_run, {1.0}), "-");
}

TEST(ScenarioRunnerTest, MeanTrainingCostPositiveAfterWork) {
  ScenarioRunner runner(
      MakeFemnistScenario(3, ModelKind::kLogReg, TinyOptions()));
  runner.GroundTruth();
  EXPECT_GT(runner.MeanTrainingCost(), 0.0);
}

}  // namespace
}  // namespace bench
}  // namespace fedshap
