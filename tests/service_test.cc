// Tests of the src/service layer: job-spec parsing, the multi-tenant
// ValuationService's cross-job training dedup, cancellation, and the
// stop -> recover -> bit-identical-resume contract.

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/job_spec.h"
#include "service/valuation_service.h"

namespace fedshap {
namespace {

/// A fresh scratch state directory per test.
std::string StateDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fedshap_service_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// The tests' standard workload: the closed-form linreg utility (instant
/// deterministic evaluations), n clients, fixed seed.
ScenarioSpec LinregScenario(int n, uint64_t seed = 11) {
  ScenarioSpec scenario;
  scenario.kind = "linreg";
  scenario.n = n;
  scenario.seed = seed;
  return scenario;
}

JobSpec MakeJob(const std::string& name, EstimatorKind estimator,
                const ScenarioSpec& scenario, int gamma = 24,
                int chunk = 4) {
  JobSpec spec;
  spec.name = name;
  spec.estimator = estimator;
  spec.gamma = gamma;
  spec.seed = 5;
  spec.checkpoint_every = chunk;
  spec.scenario = scenario;
  return spec;
}

/// Runs one job in a private single-worker in-memory service: the
/// isolated baseline the shared-service results must match.
ValuationResult RunIsolated(const JobSpec& spec) {
  ServiceConfig config;
  config.workers = 1;
  ValuationService service(config);
  EXPECT_TRUE(service.Submit(spec).ok());
  Result<ValuationResult> result = service.Wait(spec.name);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : ValuationResult{};
}

// ---------------------------------------------------------------------------
// JobSpec parsing

TEST(JobSpecTest, LineRoundTrip) {
  JobSpec spec;
  spec.name = "round-trip_1.a";
  spec.estimator = EstimatorKind::kStratified;
  spec.gamma = 17;
  spec.k = 3;
  spec.seed = 99;
  spec.checkpoint_every = 2;
  spec.scenario.kind = "digits";
  spec.scenario.n = 7;
  spec.scenario.partition = "skew";
  spec.scenario.seed = 123;
  spec.scenario.fl_rounds = 4;
  spec.scenario.local_epochs = 2;
  spec.scenario.batch_size = 8;
  spec.scenario.learning_rate = 0.125;

  Result<JobSpec> parsed = JobSpec::FromLine(spec.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, spec.name);
  EXPECT_EQ(parsed->estimator, spec.estimator);
  EXPECT_EQ(parsed->gamma, spec.gamma);
  EXPECT_EQ(parsed->k, spec.k);
  EXPECT_EQ(parsed->seed, spec.seed);
  EXPECT_EQ(parsed->checkpoint_every, spec.checkpoint_every);
  EXPECT_EQ(parsed->scenario.kind, spec.scenario.kind);
  EXPECT_EQ(parsed->scenario.n, spec.scenario.n);
  EXPECT_EQ(parsed->scenario.partition, spec.scenario.partition);
  EXPECT_EQ(parsed->scenario.seed, spec.scenario.seed);
  EXPECT_EQ(parsed->scenario.fl_rounds, spec.scenario.fl_rounds);
  EXPECT_EQ(parsed->scenario.local_epochs, spec.scenario.local_epochs);
  EXPECT_EQ(parsed->scenario.batch_size, spec.scenario.batch_size);
  EXPECT_EQ(parsed->scenario.learning_rate, spec.scenario.learning_rate);
  EXPECT_EQ(parsed->ToLine(), spec.ToLine());
}

TEST(JobSpecTest, LinregLineRoundTrip) {
  JobSpec spec = MakeJob("lin", EstimatorKind::kPermMc, LinregScenario(5));
  spec.scenario.samples_per_client = 31;
  spec.scenario.noise_scale = 0.25;
  Result<JobSpec> parsed = JobSpec::FromLine(spec.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->scenario.samples_per_client, 31);
  EXPECT_EQ(parsed->scenario.noise_scale, 0.25);
  EXPECT_EQ(parsed->ToLine(), spec.ToLine());
}

TEST(JobSpecTest, ParseRejectsMalformedLines) {
  EXPECT_FALSE(JobSpec::FromLine("estimator=ipss").ok());  // no name
  EXPECT_FALSE(JobSpec::FromLine("name=a estimator=nope").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a gamma=abc").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a gamma=0").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a chunk=0").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=bad/name").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a bogus-key=1").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a noequals").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a seed=-3").ok());
  // Out-of-int-range values must be rejected, not truncated: 2^32 + 1
  // silently becoming gamma=1 would run the job with a wrong budget.
  EXPECT_FALSE(JobSpec::FromLine("name=a gamma=4294967297").ok());
  EXPECT_FALSE(JobSpec::FromLine("name=a n=99999999999").ok());
}

TEST(JobSpecTest, ParseJobFileSkipsCommentsAndRejectsDuplicates) {
  Result<std::vector<JobSpec>> specs = ParseJobFile(
      "# a comment line\n"
      "\n"
      "name=a estimator=ipss gamma=8 scenario=linreg n=4\n"
      "   # indented comment\n"
      "name=b estimator=loo scenario=linreg n=4\n");
  ASSERT_TRUE(specs.ok()) << specs.status();
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name, "a");
  EXPECT_EQ((*specs)[1].name, "b");

  EXPECT_FALSE(ParseJobFile("name=a estimator=ipss\nname=a estimator=loo\n")
                   .ok());
}

TEST(JobSpecTest, AllocationKeyRoundTripsAndValidates) {
  // allocation=neyman selects the adaptive stratified sweep; the key
  // must survive the persistence round trip like every other.
  JobSpec spec = MakeJob("ney", EstimatorKind::kStratified,
                         LinregScenario(6));
  spec.allocation = "neyman";
  Result<JobSpec> parsed = JobSpec::FromLine(spec.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->allocation, "neyman");
  EXPECT_EQ(parsed->ToLine(), spec.ToLine());

  // Default stays "fixed" when the key is absent.
  Result<JobSpec> plain = JobSpec::FromLine(
      "name=a estimator=stratified gamma=8 scenario=linreg n=4");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->allocation, "fixed");

  // Unknown values and non-stratified estimators are rejected.
  EXPECT_FALSE(JobSpec::FromLine(
                   "name=a estimator=stratified allocation=bogus "
                   "scenario=linreg n=4")
                   .ok());
  EXPECT_FALSE(JobSpec::FromLine(
                   "name=a estimator=ipss allocation=neyman "
                   "scenario=linreg n=4")
                   .ok());
  EXPECT_FALSE(JobSpec::FromLine(
                   "name=a estimator=loo allocation=neyman "
                   "scenario=linreg n=4")
                   .ok());
}

TEST(JobSpecTest, AllocationSelectsTheSweep) {
  JobSpec spec = MakeJob("s", EstimatorKind::kStratified,
                         LinregScenario(5));
  Result<std::unique_ptr<ResumableEstimator>> fixed = MakeSweep(spec, 5);
  ASSERT_TRUE(fixed.ok());
  EXPECT_STREQ((*fixed)->AlgorithmName(), "stratified");

  spec.allocation = "neyman";
  Result<std::unique_ptr<ResumableEstimator>> adaptive = MakeSweep(spec, 5);
  ASSERT_TRUE(adaptive.ok());
  EXPECT_STREQ((*adaptive)->AlgorithmName(), "adaptive-stratified");
}

TEST(ValuationServiceTest, NeymanAllocationJobRunsAndResumesLikeAnyOther) {
  // The adaptive sweep through the whole service stack: same values as
  // an isolated run, any worker count.
  JobSpec job = MakeJob("ada", EstimatorKind::kStratified,
                        LinregScenario(8), /*gamma=*/24, /*chunk=*/4);
  job.allocation = "neyman";
  ValuationResult isolated = RunIsolated(job);
  ASSERT_EQ(isolated.values.size(), 8u);
  for (int workers : {2, 4}) {
    ServiceConfig config;
    config.workers = workers;
    ValuationService service(config);
    ASSERT_TRUE(service.Submit(job).ok());
    Result<ValuationResult> result = service.Wait(job.name);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->values, isolated.values) << "workers=" << workers;
  }
}

TEST(JobSpecTest, PrefetchAndFuseKeysRoundTripAndValidate) {
  JobSpec spec = MakeJob("spec", EstimatorKind::kIpss, LinregScenario(6));
  spec.prefetch = 12;
  spec.fuse = true;
  Result<JobSpec> parsed = JobSpec::FromLine(spec.ToLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->prefetch, 12);
  EXPECT_TRUE(parsed->fuse);
  EXPECT_EQ(parsed->ToLine(), spec.ToLine());

  // Defaults when the keys are absent: prefetch off, fusion off.
  Result<JobSpec> plain =
      JobSpec::FromLine("name=a estimator=ipss gamma=8 scenario=linreg n=4");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->prefetch, 0);
  EXPECT_FALSE(plain->fuse);

  // Bad values are rejected with InvalidArgument.
  EXPECT_FALSE(
      JobSpec::FromLine("name=a estimator=ipss prefetch=-2 "
                        "scenario=linreg n=4")
          .ok());
  EXPECT_FALSE(
      JobSpec::FromLine("name=a estimator=ipss prefetch=soon "
                        "scenario=linreg n=4")
          .ok());
  EXPECT_FALSE(
      JobSpec::FromLine("name=a estimator=ipss fuse=maybe "
                        "scenario=linreg n=4")
          .ok());
}

TEST(ValuationServiceTest, PrefetchedJobBitIdenticalWithExactAccounting) {
  // The speculative prefetcher only reorders who trains what: values must
  // stay bit-identical to an unprefetched run, and single-flight plus the
  // credit protocol must keep the training count exact — every distinct
  // coalition trained exactly once in the whole process, whoever won it.
  JobSpec job = MakeJob("pre", EstimatorKind::kIpss, LinregScenario(7),
                        /*gamma=*/28, /*chunk=*/4);
  ValuationResult reference = RunIsolated(job);
  ASSERT_EQ(reference.values.size(), 7u);

  ServiceConfig config;
  config.workers = 1;
  config.paused = true;  // queue the job; let the prefetcher run first
  ValuationService service(config);
  job.prefetch = 8;
  ASSERT_TRUE(service.Submit(job).ok());

  // With the workers paused the prefetch thread has the budget to
  // itself: wait for it to train ahead of the (not yet started) job.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.stats().prefetch_trainings == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(service.stats().prefetch_trainings, 0u);

  service.Resume();
  Result<ValuationResult> result = service.Wait(job.name);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->values, reference.values);
  EXPECT_EQ(result->num_trainings, reference.num_trainings);
  // The acceptance invariant: trainings the prefetcher ran on the job's
  // behalf still count as the job's own — fresh accounting is exact, not
  // deflated by the speculation.
  EXPECT_EQ(result->num_fresh_trainings, reference.num_fresh_trainings);

  const ServiceStats stats = service.stats();
  // Exactly-once: prefetched + demand-trained together cover the job's
  // distinct coalitions with zero duplicates.
  EXPECT_EQ(stats.trainings_computed, reference.num_trainings);
  EXPECT_EQ(stats.prefetch_credited, stats.prefetch_trainings);
  // Everything prefetched came from the job's own announced plan, so the
  // job went on to evaluate all of it.
  EXPECT_EQ(stats.prefetch_consumed, stats.prefetch_credited);
}

TEST(ValuationServiceTest, FusedJobMatchesUnfusedValues) {
  // fuse=on routes slice batches through EvaluateBatchFused. The linreg
  // utility has no affine scorer, so the fused dispatch degrades to the
  // per-coalition path and values stay bit-identical — this pins the
  // wiring (spec -> session -> cache) end to end.
  JobSpec job = MakeJob("fuse", EstimatorKind::kExactMc, LinregScenario(6),
                        /*gamma=*/0, /*chunk=*/8);
  ValuationResult reference = RunIsolated(job);
  ASSERT_EQ(reference.values.size(), 6u);

  ServiceConfig config;
  config.workers = 2;
  ValuationService service(config);
  job.fuse = true;
  ASSERT_TRUE(service.Submit(job).ok());
  Result<ValuationResult> result = service.Wait(job.name);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->values, reference.values);
  EXPECT_EQ(result->num_trainings, reference.num_trainings);
}

TEST(JobSpecTest, EstimatorKindsRoundTripAndClassify) {
  const EstimatorKind kinds[] = {
      EstimatorKind::kIpss,        EstimatorKind::kAdaptiveIpss,
      EstimatorKind::kStratified,  EstimatorKind::kExactMc,
      EstimatorKind::kExactCc,     EstimatorKind::kExactPerm,
      EstimatorKind::kPermMc,      EstimatorKind::kKGreedy,
      EstimatorKind::kExtTmc,      EstimatorKind::kExtGtb,
      EstimatorKind::kCcShapley,   EstimatorKind::kLeaveOneOut,
      EstimatorKind::kBanzhaf,
  };
  for (EstimatorKind kind : kinds) {
    Result<EstimatorKind> parsed = ParseEstimatorKind(EstimatorKindName(kind));
    ASSERT_TRUE(parsed.ok()) << EstimatorKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseEstimatorKind("shapley-9000").ok());
  EXPECT_TRUE(IsResumable(EstimatorKind::kIpss));
  EXPECT_TRUE(IsResumable(EstimatorKind::kExactMc));
  EXPECT_FALSE(IsResumable(EstimatorKind::kLeaveOneOut));
  EXPECT_FALSE(IsResumable(EstimatorKind::kAdaptiveIpss));
}

TEST(JobSpecTest, ScenarioValidation) {
  ScenarioSpec scenario;
  scenario.kind = "marsrover";
  EXPECT_FALSE(scenario.Build().ok());
  scenario = LinregScenario(1);  // n too small
  EXPECT_FALSE(scenario.Build().ok());
  scenario = LinregScenario(5);
  scenario.kind = "digits";
  scenario.partition = "quantum";
  EXPECT_FALSE(scenario.Build().ok());
}

// ---------------------------------------------------------------------------
// ValuationService

TEST(ValuationServiceTest, ConcurrentJobsShareTrainingsAndMatchIsolated) {
  const ScenarioSpec scenario = LinregScenario(6);
  const std::vector<JobSpec> jobs = {
      MakeJob("ipss", EstimatorKind::kIpss, scenario),
      MakeJob("exact", EstimatorKind::kExactMc, scenario),
      MakeJob("strat", EstimatorKind::kStratified, scenario),
  };

  std::vector<ValuationResult> isolated;
  size_t isolated_trainings = 0;
  for (const JobSpec& spec : jobs) {
    isolated.push_back(RunIsolated(spec));
    isolated_trainings += isolated.back().num_trainings;
  }

  ServiceConfig config;
  config.workers = 3;
  ValuationService service(config);
  for (const JobSpec& spec : jobs) {
    ASSERT_TRUE(service.Submit(spec).ok());
  }
  ASSERT_TRUE(service.WaitAll());

  size_t fresh_sum = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    Result<JobStatus> status = service.GetStatus(jobs[i].name);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
    // Bit-identical values, and identical per-job accounting: sharing
    // the cache changes who computes, never what a job is charged.
    EXPECT_EQ(status->result.values, isolated[i].values);
    EXPECT_EQ(status->result.num_trainings, isolated[i].num_trainings);
    EXPECT_EQ(status->result.num_evaluations, isolated[i].num_evaluations);
    fresh_sum += status->result.num_fresh_trainings;
  }

  // Cross-job dedup: the three jobs overlap heavily (exact-mc covers
  // every coalition), so together they must train strictly fewer models
  // than the three isolated runs combined — and every computed training
  // is attributed to exactly one job.
  const ServiceStats stats = service.stats();
  EXPECT_LT(stats.trainings_computed, isolated_trainings);
  EXPECT_EQ(stats.trainings_computed, fresh_sum);
  EXPECT_EQ(stats.workloads, 1u);
}

TEST(ValuationServiceTest, WorkerCountDoesNotChangeResults) {
  const ScenarioSpec scenario = LinregScenario(6, 31);
  const std::vector<JobSpec> jobs = {
      MakeJob("a", EstimatorKind::kIpss, scenario, 20, 2),
      MakeJob("b", EstimatorKind::kExactMc, scenario, 20, 8),
      MakeJob("c", EstimatorKind::kPermMc, scenario, 30, 1),
  };
  std::vector<std::vector<double>> values_by_workers;
  for (int workers : {1, 4}) {
    ServiceConfig config;
    config.workers = workers;
    ValuationService service(config);
    for (const JobSpec& spec : jobs) {
      ASSERT_TRUE(service.Submit(spec).ok());
    }
    ASSERT_TRUE(service.WaitAll());
    std::vector<double> all;
    for (const JobSpec& spec : jobs) {
      Result<ValuationResult> result = service.Wait(spec.name);
      ASSERT_TRUE(result.ok());
      all.insert(all.end(), result->values.begin(), result->values.end());
    }
    values_by_workers.push_back(std::move(all));
  }
  EXPECT_EQ(values_by_workers[0], values_by_workers[1]);
}

TEST(ValuationServiceTest, RejectsDuplicateNamesAndUnknownLookups) {
  ServiceConfig config;
  config.paused = true;
  ValuationService service(config);
  ASSERT_TRUE(
      service.Submit(MakeJob("dup", EstimatorKind::kLeaveOneOut,
                             LinregScenario(4)))
          .ok());
  Status again = service.Submit(
      MakeJob("dup", EstimatorKind::kIpss, LinregScenario(4)));
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(service.GetStatus("ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Cancel("ghost").code(), StatusCode::kNotFound);
}

TEST(ValuationServiceTest, CancelQueuedJobBeforeItRuns) {
  ServiceConfig config;
  config.paused = true;  // Nothing runs until Resume.
  ValuationService service(config);
  ASSERT_TRUE(service
                  .Submit(MakeJob("doomed", EstimatorKind::kExactMc,
                                  LinregScenario(8)))
                  .ok());
  ASSERT_TRUE(service.Cancel("doomed").ok());
  service.Resume();
  Result<ValuationResult> result = service.Wait("doomed");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  Result<JobStatus> status = service.GetStatus("doomed");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kCancelled);
  // Cancelling twice is an error: the job is already terminal.
  EXPECT_EQ(service.Cancel("doomed").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ValuationServiceTest, CancelRunningJobStopsAtSliceBoundary) {
  ServiceConfig config;
  config.workers = 1;
  ValuationService service(config);
  // 512 one-unit slices of real FedAvg trainings: cancellation lands
  // hundreds of slices before completion.
  ScenarioSpec scenario;
  scenario.kind = "digits";
  scenario.n = 9;
  scenario.seed = 3;
  JobSpec spec = MakeJob("long", EstimatorKind::kExactMc, scenario, 32, 1);
  ASSERT_TRUE(service.Submit(spec).ok());
  // Wait for observable progress, then cancel.
  for (;;) {
    Result<JobStatus> status = service.GetStatus("long");
    ASSERT_TRUE(status.ok());
    if (status->completed_units > 0) break;
    std::this_thread::yield();
  }
  ASSERT_TRUE(service.Cancel("long").ok());
  Result<ValuationResult> result = service.Wait("long");
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  Result<JobStatus> status = service.GetStatus("long");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kCancelled);
  EXPECT_LT(status->completed_units, status->total_units);
}

TEST(ValuationServiceTest, AdaptiveIpssAcceptsSmallBudgetCeiling) {
  // gamma below the adaptive estimator's default starting budget must
  // start at the ceiling, not fail config validation.
  ServiceConfig config;
  config.workers = 1;
  ValuationService service(config);
  ASSERT_TRUE(service
                  .Submit(MakeJob("tiny", EstimatorKind::kAdaptiveIpss,
                                  LinregScenario(5), /*gamma=*/4))
                  .ok());
  Result<ValuationResult> result = service.Wait("tiny");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->values.size(), 5u);
}

TEST(ValuationServiceTest, FailedJobReportsEstimatorError) {
  ServiceConfig config;
  config.workers = 1;
  ValuationService service(config);
  // exact-perm requires n <= 8; n = 10 fails inside the estimator.
  ASSERT_TRUE(service
                  .Submit(MakeJob("toolarge", EstimatorKind::kExactPerm,
                                  LinregScenario(10)))
                  .ok());
  Result<ValuationResult> result = service.Wait("toolarge");
  EXPECT_FALSE(result.ok());
  Result<JobStatus> status = service.GetStatus("toolarge");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kFailed);
  EXPECT_FALSE(status->error.empty());
}

TEST(ValuationServiceTest, StopRecoverResumesBitIdentical) {
  const std::string dir = StateDir("resume");
  const ScenarioSpec scenario = LinregScenario(7, 77);
  const std::vector<JobSpec> jobs = {
      MakeJob("sweep-ipss", EstimatorKind::kIpss, scenario, 28, 4),
      MakeJob("sweep-exact", EstimatorKind::kExactMc, scenario, 28, 8),
      MakeJob("oneshot", EstimatorKind::kLeaveOneOut, scenario),
  };

  // The uninterrupted reference.
  std::vector<ValuationResult> reference;
  for (const JobSpec& spec : jobs) reference.push_back(RunIsolated(spec));

  // Phase 1: run a few slices, then halt mid-flight (the deterministic
  // stand-in for kill -9: state survives only through the state dir).
  {
    ServiceConfig config;
    config.workers = 1;
    config.state_dir = dir;
    config.max_slices = 3;
    ValuationService service(config);
    for (const JobSpec& spec : jobs) {
      ASSERT_TRUE(service.Submit(spec).ok());
    }
    EXPECT_FALSE(service.WaitAll());  // Halted with jobs in flight.
    service.Stop();
  }

  // Phase 2: a new process recovers and drains everything.
  {
    ServiceConfig config;
    config.workers = 2;
    config.state_dir = dir;
    ValuationService service(config);
    ASSERT_TRUE(service.Recover().ok());
    EXPECT_EQ(service.ListJobs().size(), jobs.size());
    ASSERT_TRUE(service.WaitAll());
    for (size_t i = 0; i < jobs.size(); ++i) {
      Result<ValuationResult> result = service.Wait(jobs[i].name);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->values, reference[i].values)
          << "job " << jobs[i].name
          << " did not resume to the uninterrupted result";
    }
  }

  // Phase 3: another restart serves everything from persisted results
  // and stores — zero trainings recomputed.
  {
    ServiceConfig config;
    config.workers = 1;
    config.state_dir = dir;
    ValuationService service(config);
    ASSERT_TRUE(service.Recover().ok());
    ASSERT_TRUE(service.WaitAll());
    for (size_t i = 0; i < jobs.size(); ++i) {
      Result<ValuationResult> result = service.Wait(jobs[i].name);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->values, reference[i].values);
    }
    EXPECT_EQ(service.stats().trainings_computed, 0u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ValuationServiceTest, PurgeRemovesTerminalJobsOnly) {
  const std::string dir = StateDir("purge");
  ServiceConfig config;
  config.workers = 1;
  config.state_dir = dir;
  ValuationService service(config);
  const JobSpec spec =
      MakeJob("once", EstimatorKind::kLeaveOneOut, LinregScenario(4));
  ASSERT_TRUE(service.Submit(spec).ok());
  ASSERT_TRUE(service.Wait("once").ok());
  ASSERT_TRUE(service.Purge("once").ok());
  EXPECT_EQ(service.GetStatus("once").status().code(),
            StatusCode::kNotFound);
  // The name is free again, and no stale result file shadows the re-run.
  ASSERT_TRUE(service.Submit(spec).ok());
  ASSERT_TRUE(service.Wait("once").ok());
  std::filesystem::remove_all(dir);
}

TEST(ValuationServiceTest, ValuationResultEncodingRoundTrips) {
  ValuationResult result;
  result.values = {0.125, -3.5, 1e-17};
  result.num_evaluations = 42;
  result.num_trainings = 17;
  result.num_fresh_trainings = 5;
  result.charged_seconds = 1.25;
  result.wall_seconds = 0.5;
  Result<ValuationResult> decoded =
      DecodeValuationResult(EncodeValuationResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->values, result.values);
  EXPECT_EQ(decoded->num_evaluations, result.num_evaluations);
  EXPECT_EQ(decoded->num_trainings, result.num_trainings);
  EXPECT_EQ(decoded->num_fresh_trainings, result.num_fresh_trainings);
  EXPECT_EQ(decoded->charged_seconds, result.charged_seconds);
  EXPECT_EQ(decoded->wall_seconds, result.wall_seconds);
  EXPECT_FALSE(DecodeValuationResult("garbage").ok());
}

// ---------------------------------------------------------------------------
// Shutdown ordering
// ---------------------------------------------------------------------------

// Regression: Stop() must park the prefetcher thread *before* flushing
// (and, in the destructor, closing) the stores — a prefetch training
// in flight during shutdown must never write through a dying store —
// and concurrent Stop() calls (an explicit Stop racing the destructor's)
// must not double-join the worker threads. Repeatedly stops a service
// from two threads at staggered points of a prefetch-heavy job; the
// sanitizer jobs make this a use-after-free / double-join probe.
TEST(ValuationServiceTest, StopRacesInFlightPrefetchCleanly) {
  const std::string dir = StateDir("stop_race");
  for (int round = 0; round < 20; ++round) {
    std::filesystem::remove_all(dir);
    ServiceConfig config;
    config.workers = 2;
    config.state_dir = dir;  // stores attached => Stop flushes them
    ValuationService service(config);
    JobSpec job =
        MakeJob("pre", EstimatorKind::kIpss, LinregScenario(7), 28, 4);
    job.prefetch = 8;
    ASSERT_TRUE(service.Submit(job).ok());
    // Stagger the stop point across rounds so some rounds catch the
    // prefetcher mid-plan and some catch it idle.
    std::this_thread::sleep_for(std::chrono::microseconds(100 * round));
    std::thread stopper([&service] { service.Stop(); });
    service.Stop();
    stopper.join();
  }  // the destructor runs Stop() once more on an already-stopped service
}

}  // namespace
}  // namespace fedshap
