// FaultInjector: the deterministic fault script behind the cluster test
// harness. These tests pin the spec grammar, the per-site event
// semantics (nth / after / seeded probability), replayability, the
// global FEDSHAP_FAULT_SPEC hook, and the torn-store-write seam in
// SegmentWriter::Append — the fault every other suite builds on.

#include "util/fault_injector.h"

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/framing.h"
#include "util/segment_file.h"

namespace fedshap {
namespace {

std::unique_ptr<FaultInjector> MustParse(const std::string& spec) {
  Result<std::unique_ptr<FaultInjector>> parsed = FaultInjector::Parse(spec);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(FaultInjectorTest, EmptySpecNeverFires) {
  auto injector = MustParse("");
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector->Fire(FaultSite::kKillWorker));
    EXPECT_FALSE(injector->Fire(FaultSite::kDropFrame));
  }
  EXPECT_EQ(injector->events(FaultSite::kKillWorker), 100u);
  EXPECT_EQ(injector->fired(FaultSite::kKillWorker), 0u);
}

TEST(FaultInjectorTest, NthFiresExactlyOnce) {
  auto injector = MustParse("drop-frame:nth=3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector->Fire(FaultSite::kDropFrame));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(injector->fired(FaultSite::kDropFrame), 1u);
}

TEST(FaultInjectorTest, AfterFiresFromEventNPlusOneOnward) {
  auto injector = MustParse("kill-worker:after=3");
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) {
    fired.push_back(injector->Fire(FaultSite::kKillWorker));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true}));
}

TEST(FaultInjectorTest, BareSiteAlwaysFires) {
  auto injector = MustParse("dup-frame");
  EXPECT_TRUE(injector->Fire(FaultSite::kDupFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kDupFrame));
}

TEST(FaultInjectorTest, SitesAreIndependentStreams) {
  auto injector = MustParse("kill-worker:after=3;drop-frame:nth=2");
  // The ISSUE's example spec: kill after 3 kill-events, drop the 2nd
  // frame-event; neither counter disturbs the other.
  EXPECT_FALSE(injector->Fire(FaultSite::kDropFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kDropFrame));
  EXPECT_FALSE(injector->Fire(FaultSite::kDropFrame));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(injector->Fire(FaultSite::kKillWorker));
  }
  EXPECT_TRUE(injector->Fire(FaultSite::kKillWorker));
  EXPECT_EQ(injector->events(FaultSite::kDropFrame), 3u);
  EXPECT_EQ(injector->events(FaultSite::kKillWorker), 4u);
}

TEST(FaultInjectorTest, UntilFiresUpToAndIncludingK) {
  // The "broken for a while, then heals" trigger the circuit-breaker and
  // reconnect suites script: events 1..K fire, K+1 onward pass.
  auto injector = MustParse("drop-frame:until=3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(injector->Fire(FaultSite::kDropFrame));
  }
  EXPECT_EQ(fired, (std::vector<bool>{true, true, true, false, false, false}));
  EXPECT_EQ(injector->fired(FaultSite::kDropFrame), 3u);
}

TEST(FaultInjectorTest, NetworkSiteNamesParse) {
  // The four network sites added for the TCP transport; each name is the
  // stable spec vocabulary fedshapd and the tests share.
  auto injector = MustParse(
      "partition:nth=2;delay-frame:nth=1,ms=50;corrupt-frame:after=1;"
      "refuse-connect:until=2");
  EXPECT_FALSE(injector->Fire(FaultSite::kPartition));
  EXPECT_TRUE(injector->Fire(FaultSite::kPartition));
  EXPECT_TRUE(injector->Fire(FaultSite::kDelayFrame));
  EXPECT_EQ(injector->param_ms(FaultSite::kDelayFrame), 50u);
  EXPECT_FALSE(injector->Fire(FaultSite::kCorruptFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kCorruptFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kRefuseConnect));
  EXPECT_TRUE(injector->Fire(FaultSite::kRefuseConnect));
  EXPECT_FALSE(injector->Fire(FaultSite::kRefuseConnect));
  // Sites without an ms= magnitude read back 0.
  EXPECT_EQ(injector->param_ms(FaultSite::kPartition), 0u);
}

TEST(FaultInjectorTest, SiteNamesRoundTripThroughSpec) {
  EXPECT_EQ(FaultSiteName(FaultSite::kPartition), "partition");
  EXPECT_EQ(FaultSiteName(FaultSite::kDelayFrame), "delay-frame");
  EXPECT_EQ(FaultSiteName(FaultSite::kCorruptFrame), "corrupt-frame");
  EXPECT_EQ(FaultSiteName(FaultSite::kRefuseConnect), "refuse-connect");
}

TEST(FaultInjectorTest, SeededProbabilityIsReplayable) {
  auto a = MustParse("drop-frame:p=0.5,seed=42");
  auto b = MustParse("drop-frame:p=0.5,seed=42");
  auto c = MustParse("drop-frame:p=0.5,seed=43");
  std::vector<bool> seq_a, seq_b, seq_c;
  for (int i = 0; i < 256; ++i) {
    seq_a.push_back(a->Fire(FaultSite::kDropFrame));
    seq_b.push_back(b->Fire(FaultSite::kDropFrame));
    seq_c.push_back(c->Fire(FaultSite::kDropFrame));
  }
  EXPECT_EQ(seq_a, seq_b);  // identical seed => identical decisions
  EXPECT_NE(seq_a, seq_c);  // different seed => different script
  // p=0.5 over 256 draws: a wildly skewed count means the hash is broken.
  const size_t hits = a->fired(FaultSite::kDropFrame);
  EXPECT_GT(hits, 64u);
  EXPECT_LT(hits, 192u);
}

TEST(FaultInjectorTest, ResetReplaysTheScript) {
  auto injector = MustParse("drop-frame:nth=2");
  EXPECT_FALSE(injector->Fire(FaultSite::kDropFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kDropFrame));
  injector->Reset();
  EXPECT_EQ(injector->events(FaultSite::kDropFrame), 0u);
  EXPECT_FALSE(injector->Fire(FaultSite::kDropFrame));
  EXPECT_TRUE(injector->Fire(FaultSite::kDropFrame));
}

TEST(FaultInjectorTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::Parse("explode-now").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:nth=0").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:nth=x").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:nth=1,after=2").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:seed=7").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:p=1.5").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:bogus=1").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:until=0").ok());
  EXPECT_FALSE(FaultInjector::Parse("drop-frame:until=1,nth=2").ok());
  EXPECT_FALSE(
      FaultInjector::Parse("drop-frame:nth=1;drop-frame:nth=2").ok());
  EXPECT_TRUE(FaultInjector::Parse("kill-worker:after=3;drop-frame:nth=2").ok());
}

TEST(FaultInjectorTest, SetGlobalInstallsAndClears) {
  FaultInjector::SetGlobal(MustParse("torn-store-write:nth=1"));
  ASSERT_NE(FaultInjector::Global(), nullptr);
  EXPECT_EQ(FaultInjector::Global()->spec(), "torn-store-write:nth=1");
  FaultInjector::SetGlobal(nullptr);
  EXPECT_EQ(FaultInjector::Global(), nullptr);
}

// The store-flush seam: an injected torn write must leave exactly the
// on-disk state a crash mid-append leaves — a valid prefix plus a
// partial frame — and torn-tail recovery must heal it on reopen.
TEST(FaultInjectorTest, TornStoreWriteLeavesRecoverableTail) {
  const std::string dir =
      std::filesystem::temp_directory_path() / "fedshap_fault_injector_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/segment.seg";
  constexpr uint32_t kMagic = 0x54534554;  // "TEST"

  FaultInjector::SetGlobal(MustParse("torn-store-write:nth=3"));
  {
    Result<std::unique_ptr<SegmentWriter>> writer =
        SegmentWriter::Create(path, kMagic, 1, /*meta=*/7);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    ASSERT_TRUE((*writer)->Append("record-one").ok());
    ASSERT_TRUE((*writer)->Append("record-two").ok());
    Result<uint64_t> torn = (*writer)->Append("record-three");
    ASSERT_FALSE(torn.ok());
    EXPECT_NE(torn.status().message().find("torn write"), std::string::npos);
  }
  FaultInjector::SetGlobal(nullptr);

  Result<std::unique_ptr<SegmentReader>> reader =
      SegmentReader::Open(path, kMagic, 1);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_TRUE((*reader)->torn_tail());
  EXPECT_FALSE((*reader)->sealed());
  std::vector<std::string> payloads;
  ASSERT_TRUE((*reader)
                  ->ForEachRecord([&](uint64_t, std::string_view payload) {
                    payloads.emplace_back(payload);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(payloads, (std::vector<std::string>{"record-one", "record-two"}));

  // Torn-tail recovery: resume appending at data_end and the segment is
  // whole again.
  const uint64_t resume_at = (*reader)->data_end();
  reader->reset();  // unmap before OpenForAppend truncates the file
  Result<std::unique_ptr<SegmentWriter>> resumed =
      SegmentWriter::OpenForAppend(path, resume_at);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_TRUE((*resumed)->Append("record-three").ok());
  (*resumed).reset();
  Result<std::unique_ptr<SegmentReader>> healed =
      SegmentReader::Open(path, kMagic, 1);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_FALSE((*healed)->torn_tail());
  size_t records = 0;
  ASSERT_TRUE((*healed)
                  ->ForEachRecord([&](uint64_t, std::string_view) {
                    ++records;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(records, 3u);
  std::filesystem::remove_all(dir);
}

// Framing is the other half of the fault surface: a CRC-framed channel
// must round-trip frames, surface timeouts as idle (not errors), and
// read a peer close as a clean NotFound.
TEST(FrameChannelTest, RoundTripTimeoutAndClose) {
  Result<std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>>
      pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  auto [a, b] = std::move(pair).value();

  ASSERT_TRUE(a->Send(7, "hello cluster").ok());
  ASSERT_TRUE(a->Send(8, "").ok());
  Result<std::optional<Frame>> first = b->Recv(1000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->type, 7u);
  EXPECT_EQ((*first)->payload, "hello cluster");
  Result<std::optional<Frame>> second = b->Recv(1000);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->type, 8u);
  EXPECT_EQ((*second)->payload, "");

  // Idle timeout: no frame in flight is a nullopt, not an error.
  Result<std::optional<Frame>> idle = b->Recv(10);
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle->has_value());

  // Peer close at a frame boundary: clean NotFound.
  a.reset();
  Result<std::optional<Frame>> closed = b->Recv(1000);
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kNotFound);
}

TEST(FrameChannelTest, ShutdownUnblocksReceiver) {
  Result<std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>>
      pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok());
  auto [a, b] = std::move(pair).value();
  b->Shutdown();
  Result<std::optional<Frame>> closed = b->Recv(-1);
  EXPECT_FALSE(closed.ok());
  (void)a;
}

}  // namespace
}  // namespace fedshap
