#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/cc_shapley.h"
#include "baselines/extended_gtb.h"
#include "baselines/extended_tmc.h"
#include "core/exact.h"
#include "core/ipss.h"
#include "core/valuation_metrics.h"
#include "test_util.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

// ---------------------------------------------------------------------------
// Extended-TMC

TEST(ExtendedTmcTest, ConvergesToExactWithManyPermutations) {
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  UtilitySession tmc_session(&cache);
  ExtendedTmcConfig config;
  config.permutations = 4000;
  config.truncation_tolerance = 0.0;  // no truncation: pure MC
  config.seed = 5;
  Result<ValuationResult> tmc = ExtendedTmcShapley(tmc_session, config);
  ASSERT_TRUE(tmc.ok());
  EXPECT_LT(RelativeL2Error(exact->values, tmc->values), 0.05);
}

TEST(ExtendedTmcTest, EfficiencyHoldsPerPermutationWithoutTruncation) {
  // Each untruncated permutation telescopes to U(N) - U(empty), so the
  // estimator preserves efficiency exactly.
  const int n = 5;
  TableUtility table = RandomTable(n, 9);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  ExtendedTmcConfig config;
  config.permutations = 37;
  config.truncation_tolerance = 0.0;
  Result<ValuationResult> tmc = ExtendedTmcShapley(session, config);
  ASSERT_TRUE(tmc.ok());
  const double u_full = table.Evaluate(Coalition::Full(n)).value();
  const double u_empty = table.Evaluate(Coalition()).value();
  EXPECT_NEAR(EfficiencyResidual(tmc->values, u_full, u_empty), 0.0, 1e-10);
}

TEST(ExtendedTmcTest, TruncationReducesEvaluations) {
  const int n = 8;
  TableUtility table = MonotoneTable(n);  // saturates quickly
  UtilityCache cache(&table);
  ExtendedTmcConfig config;
  config.permutations = 30;
  config.seed = 11;

  config.truncation_tolerance = 0.0;
  UtilitySession full_session(&cache);
  Result<ValuationResult> full = ExtendedTmcShapley(full_session, config);
  ASSERT_TRUE(full.ok());

  config.truncation_tolerance = 0.05;
  UtilitySession truncated_session(&cache);
  Result<ValuationResult> truncated =
      ExtendedTmcShapley(truncated_session, config);
  ASSERT_TRUE(truncated.ok());
  EXPECT_LT(truncated->num_evaluations, full->num_evaluations);
}

TEST(ExtendedTmcTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(5, 13);
  UtilityCache cache(&table);
  ExtendedTmcConfig config;
  config.permutations = 10;
  config.seed = 21;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = ExtendedTmcShapley(s1, config);
  Result<ValuationResult> r2 = ExtendedTmcShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(ExtendedTmcTest, Validation) {
  TableUtility table = RandomTable(3, 15);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  ExtendedTmcConfig config;
  config.permutations = 0;
  EXPECT_FALSE(ExtendedTmcShapley(session, config).ok());
}

// ---------------------------------------------------------------------------
// Extended-GTB

TEST(ExtendedGtbTest, EfficiencyConstraintAlwaysHolds) {
  const int n = 5;
  TableUtility table = RandomTable(n, 17);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  ExtendedGtbConfig config;
  config.samples = 25;
  Result<ValuationResult> gtb = ExtendedGtbShapley(session, config);
  ASSERT_TRUE(gtb.ok());
  const double u_full = table.Evaluate(Coalition::Full(n)).value();
  const double u_empty = table.Evaluate(Coalition()).value();
  EXPECT_NEAR(EfficiencyResidual(gtb->values, u_full, u_empty), 0.0, 1e-9);
}

TEST(ExtendedGtbTest, ConvergesOnMonotoneUtility) {
  const int n = 5;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  UtilitySession gtb_session(&cache);
  ExtendedGtbConfig config;
  config.samples = 20000;
  config.seed = 3;
  Result<ValuationResult> gtb = ExtendedGtbShapley(gtb_session, config);
  ASSERT_TRUE(gtb.ok());
  // GTB estimates pairwise differences; generous tolerance.
  EXPECT_LT(RelativeL2Error(exact->values, gtb->values), 0.15);
  EXPECT_GT(SpearmanCorrelation(exact->values, gtb->values), 0.9);
}

TEST(ExtendedGtbTest, BudgetRespected) {
  const int n = 6;
  TableUtility table = RandomTable(n, 19);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  ExtendedGtbConfig config;
  config.samples = 12;
  Result<ValuationResult> gtb = ExtendedGtbShapley(session, config);
  ASSERT_TRUE(gtb.ok());
  // samples + U(N) + U(empty).
  EXPECT_LE(gtb->num_trainings, 14u);
}

TEST(ExtendedGtbTest, Validation) {
  TableUtility one = RandomTable(1, 1);
  UtilityCache cache_one(&one);
  UtilitySession session_one(&cache_one);
  ExtendedGtbConfig config;
  EXPECT_FALSE(ExtendedGtbShapley(session_one, config).ok());

  TableUtility table = RandomTable(3, 2);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  config.samples = 0;
  EXPECT_FALSE(ExtendedGtbShapley(session, config).ok());
}

// ---------------------------------------------------------------------------
// CC-Shapley

TEST(CcShapleyTest, ConvergesToExactWithManyRounds) {
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  UtilitySession cc_session(&cache);
  CcShapleyConfig config;
  config.rounds = 8000;
  config.seed = 7;
  Result<ValuationResult> cc = CcShapley(cc_session, config);
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(RelativeL2Error(exact->values, cc->values), 0.05);
}

TEST(CcShapleyTest, EachRoundCostsTwoEvaluations) {
  const int n = 6;
  TableUtility table = RandomTable(n, 23);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  CcShapleyConfig config;
  config.rounds = 9;
  Result<ValuationResult> cc = CcShapley(session, config);
  ASSERT_TRUE(cc.ok());
  EXPECT_EQ(cc->num_evaluations, 18u);
}

TEST(CcShapleyTest, OnePairInformsAllClients) {
  // Even a single round must produce a non-trivial estimate for every
  // client (members and non-members both receive a sample).
  const int n = 5;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  CcShapleyConfig config;
  config.rounds = 1;
  config.seed = 3;
  Result<ValuationResult> cc = CcShapley(session, config);
  ASSERT_TRUE(cc.ok());
  int nonzero = 0;
  for (double v : cc->values) {
    if (v != 0.0) ++nonzero;
  }
  EXPECT_EQ(nonzero, n);
}

TEST(CcShapleyTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(5, 29);
  UtilityCache cache(&table);
  CcShapleyConfig config;
  config.rounds = 15;
  config.seed = 31;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = CcShapley(s1, config);
  Result<ValuationResult> r2 = CcShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(CcShapleyTest, Validation) {
  TableUtility table = RandomTable(3, 33);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  CcShapleyConfig config;
  config.rounds = 0;
  EXPECT_FALSE(CcShapley(session, config).ok());
}

// ---------------------------------------------------------------------------
// Cross-baseline comparison at matched budgets (the paper's core finding
// on structured, FL-shaped utilities).

TEST(SamplingBaselinesTest, IpssErrorIsCompetitiveAtTableIiiBudgets) {
  const int n = 10;
  const int gamma = 32;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  // IPSS at gamma.
  UtilitySession ipss_session(&cache);
  IpssConfig ipss_config;
  ipss_config.total_rounds = gamma;
  Result<ValuationResult> ipss = IpssShapley(ipss_session, ipss_config);
  ASSERT_TRUE(ipss.ok());
  const double ipss_error = RelativeL2Error(exact->values, ipss->values);

  // GTB at the same coalition budget.
  UtilitySession gtb_session(&cache);
  ExtendedGtbConfig gtb_config;
  gtb_config.samples = gamma;
  Result<ValuationResult> gtb = ExtendedGtbShapley(gtb_session, gtb_config);
  ASSERT_TRUE(gtb.ok());
  const double gtb_error = RelativeL2Error(exact->values, gtb->values);

  // CC-Shapley at the same number of sampled pairs.
  UtilitySession cc_session(&cache);
  CcShapleyConfig cc_config;
  cc_config.rounds = gamma;
  Result<ValuationResult> cc = CcShapley(cc_session, cc_config);
  ASSERT_TRUE(cc.ok());
  const double cc_error = RelativeL2Error(exact->values, cc->values);

  EXPECT_LT(ipss_error, gtb_error);
  EXPECT_LT(ipss_error, cc_error);
}

TEST(CcShapleyTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(10, 23);
  UtilityCache cache(&table);
  CcShapleyConfig config;
  config.rounds = 48;
  config.seed = 3;
  UtilitySession sequential(&cache);
  Result<ValuationResult> reference = CcShapley(sequential, config);
  ASSERT_TRUE(reference.ok());
  ThreadPool pool(4);
  UtilitySession batched(&cache, &pool);
  Result<ValuationResult> parallel = CcShapley(batched, config);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->values, reference->values);
  EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
  EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
  EXPECT_DOUBLE_EQ(parallel->charged_seconds, reference->charged_seconds);
}
}  // namespace
}  // namespace fedshap
