#!/bin/sh
# End-to-end crash-recovery test of the fedshapd binary: a run halted
# mid-job (--kill-after, the in-process stand-in for kill -9: the process
# exits with jobs unfinished and only the state directory survives) must,
# after a restart over the same state directory, finish every job with
# values bit-identical to an uninterrupted run.
#
# Usage: fedshapd_restart_test.sh <fedshapd-binary> <scratch-dir>

BIN="$1"
DIR="$2"
if [ -z "$BIN" ] || [ -z "$DIR" ]; then
    echo "usage: $0 <fedshapd-binary> <scratch-dir>" >&2
    exit 2
fi

rm -rf "$DIR" || exit 1
mkdir -p "$DIR" || exit 1

JOBS="$DIR/jobs.txt"
cat > "$JOBS" <<'EOF'
# Two resumable sweeps and a one-shot over one shared workload.
name=a estimator=ipss gamma=24 chunk=4 seed=5 scenario=linreg n=6 scenario-seed=5
name=b estimator=exact-mc chunk=8 scenario=linreg n=6 scenario-seed=5
name=c estimator=loo scenario=linreg n=6 scenario-seed=5
EOF

# Reference: the uninterrupted run.
"$BIN" --state-dir="$DIR/ref" --jobs="$JOBS" --workers=1 --quiet \
    --print-values > "$DIR/ref.out" || { echo "reference run failed"; exit 1; }
grep '^values' "$DIR/ref.out" | sort > "$DIR/ref.values"
[ -s "$DIR/ref.values" ] || { echo "reference produced no values"; exit 1; }

# Crash simulation: halt after 2 slices; fedshapd signals the halt with
# exit code 17.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=1 \
    --kill-after=2 --quiet > "$DIR/crash1.out"
status=$?
if [ "$status" -ne 17 ]; then
    echo "expected halt exit code 17, got $status"
    cat "$DIR/crash1.out"
    exit 1
fi

# Restart over the same state dir, re-passing the same job file (the
# "rerun the same command" flow): identical specs resume instead of
# colliding.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=2 --quiet \
    --print-values \
    > "$DIR/crash2.out" || { echo "resumed run failed"; cat "$DIR/crash2.out"; exit 1; }
grep '^values' "$DIR/crash2.out" | sort > "$DIR/crash.values"

if ! diff "$DIR/ref.values" "$DIR/crash.values"; then
    echo "resumed values differ from the uninterrupted run"
    exit 1
fi
echo "kill+restart resumed all jobs bit-identically"
rm -rf "$DIR"
exit 0
