#!/bin/sh
# End-to-end crash-recovery test of the fedshapd binary: a run halted
# mid-job (--kill-after, the in-process stand-in for kill -9: the process
# exits with jobs unfinished and only the state directory survives) must,
# after a restart over the same state directory, finish every job with
# values bit-identical to an uninterrupted run.
#
# Usage: fedshapd_restart_test.sh <fedshapd-binary> <scratch-dir>

BIN="$1"
DIR="$2"
if [ -z "$BIN" ] || [ -z "$DIR" ]; then
    echo "usage: $0 <fedshapd-binary> <scratch-dir>" >&2
    exit 2
fi

rm -rf "$DIR" || exit 1
mkdir -p "$DIR" || exit 1

JOBS="$DIR/jobs.txt"
cat > "$JOBS" <<'EOF'
# Three resumable sweeps and a one-shot over one shared workload. n=8 so
# exact-mc walks ~2^8 coalitions: enough store bytes that the segment
# crash case below can rotate segments at the 4 KiB floor. Job d is the
# adaptive (Neyman) stratified sweep — the kill can land mid-epoch with
# the allocation state half-spent, the hardest resume case. Job e runs
# with speculative prefetch and fused dispatch enabled: the kill and
# restart must leave its values bit-identical anyway (prefetch only
# reorders trainings; the linreg utility has no fused fast path, so
# fuse=on degrades to the exact per-coalition scoring).
name=a estimator=ipss gamma=24 chunk=4 seed=5 scenario=linreg n=8 scenario-seed=5
name=b estimator=exact-mc chunk=8 scenario=linreg n=8 scenario-seed=5
name=c estimator=loo scenario=linreg n=8 scenario-seed=5
name=d estimator=stratified allocation=neyman gamma=24 chunk=4 seed=5 scenario=linreg n=8 scenario-seed=5
name=e estimator=perm-mc gamma=32 chunk=4 seed=7 prefetch=8 fuse=on scenario=linreg n=8 scenario-seed=5
EOF

# Reference: the uninterrupted run.
"$BIN" --state-dir="$DIR/ref" --jobs="$JOBS" --workers=1 --quiet \
    --print-values > "$DIR/ref.out" || { echo "reference run failed"; exit 1; }
grep '^values' "$DIR/ref.out" | sort > "$DIR/ref.values"
[ -s "$DIR/ref.values" ] || { echo "reference produced no values"; exit 1; }

# Crash simulation: halt after 2 slices; fedshapd signals the halt with
# exit code 17.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=1 \
    --kill-after=2 --quiet > "$DIR/crash1.out"
status=$?
if [ "$status" -ne 17 ]; then
    echo "expected halt exit code 17, got $status"
    cat "$DIR/crash1.out"
    exit 1
fi

# Restart over the same state dir, re-passing the same job file (the
# "rerun the same command" flow): identical specs resume instead of
# colliding.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=2 --quiet \
    --print-values \
    > "$DIR/crash2.out" || { echo "resumed run failed"; cat "$DIR/crash2.out"; exit 1; }
grep '^values' "$DIR/crash2.out" | sort > "$DIR/crash.values"

if ! diff "$DIR/ref.values" "$DIR/crash.values"; then
    echo "resumed values differ from the uninterrupted run"
    exit 1
fi
echo "kill+restart resumed all jobs bit-identically"

# Segmented-store crash case: the smallest allowed segment rotation
# size (4 KiB floor) forces the workload store to seal segments while
# the job runs, and the kill lands with that machinery mid-flight. The
# restart must still recover and finish every job bit-identically —
# sealed segments, the manifest, and torn-tail truncation are what make
# that safe.
FEDSHAP_STORE_SEGMENT_BYTES=4096 \
    "$BIN" --state-dir="$DIR/seg" --jobs="$JOBS" --workers=1 \
    --kill-after=2 --quiet > "$DIR/seg1.out"
status=$?
if [ "$status" -ne 17 ]; then
    echo "expected halt exit code 17 in segment crash case, got $status"
    cat "$DIR/seg1.out"
    exit 1
fi

FEDSHAP_STORE_SEGMENT_BYTES=4096 \
    "$BIN" --state-dir="$DIR/seg" --jobs="$JOBS" --workers=2 --quiet \
    --print-values \
    > "$DIR/seg2.out" || { echo "segment-store resume failed"; cat "$DIR/seg2.out"; exit 1; }
grep '^values' "$DIR/seg2.out" | sort > "$DIR/seg.values"

if ! diff "$DIR/ref.values" "$DIR/seg.values"; then
    echo "segment-store resumed values differ from the uninterrupted run"
    exit 1
fi

# The tiny rotation size must actually have exercised the segment
# machinery: the final summary's store line reports sealed segments
# and/or completed compactions.
if ! grep '^\[fedshapd\] store ' "$DIR/seg2.out" \
        | grep -qv 'segments=0 .*compactions=0'; then
    echo "segment crash case never sealed a segment or compacted:"
    grep '^\[fedshapd\] store ' "$DIR/seg2.out"
    exit 1
fi
echo "kill+restart with forced segment rotation resumed bit-identically"
rm -rf "$DIR"
exit 0
