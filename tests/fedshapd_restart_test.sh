#!/bin/sh
# End-to-end smoke test of the fedshapd binary. The heavy scenario
# matrix (kill+recover coordinator, worker death and reassignment,
# duplicate/dropped/reordered result frames, store-tier restarts) lives
# in tests/service_cluster_test.cc on ClusterFixture; this script keeps
# the thin slice only a real process can check: flag parsing, exit
# codes, state-directory layout on disk, and the fork()ed cluster path
# through main().
#
#   1. crash-recovery: a run halted mid-job (--kill-after, the
#      in-process stand-in for kill -9; exit code 17) must, restarted
#      over the same state directory, finish every job bit-identical to
#      an uninterrupted run.
#   2. cluster smoke: the same jobs through --cluster-workers=2
#      --cluster-mode=fork with a scripted kill-worker fault
#      (FEDSHAP_FAULT_SPEC) must survive the worker death — reassigning
#      its coalitions — and still print bit-identical values.
#
# Usage: fedshapd_restart_test.sh <fedshapd-binary> <scratch-dir>

BIN="$1"
DIR="$2"
if [ -z "$BIN" ] || [ -z "$DIR" ]; then
    echo "usage: $0 <fedshapd-binary> <scratch-dir>" >&2
    exit 2
fi

rm -rf "$DIR" || exit 1
mkdir -p "$DIR" || exit 1

JOBS="$DIR/jobs.txt"
cat > "$JOBS" <<'EOF'
# Resumable sweeps and a one-shot over one shared workload. Job d is the
# adaptive (Neyman) stratified sweep — the kill can land mid-epoch with
# the allocation state half-spent, the hardest resume case. Job e runs
# with speculative prefetch enabled: kills and worker deaths must leave
# its values bit-identical anyway (prefetch only reorders trainings).
name=a estimator=ipss gamma=24 chunk=4 seed=5 scenario=linreg n=8 scenario-seed=5
name=b estimator=loo scenario=linreg n=8 scenario-seed=5
name=d estimator=stratified allocation=neyman gamma=24 chunk=4 seed=5 scenario=linreg n=8 scenario-seed=5
name=e estimator=perm-mc gamma=32 chunk=4 seed=7 prefetch=8 scenario=linreg n=8 scenario-seed=5
EOF

# Reference: the uninterrupted single-process run.
"$BIN" --state-dir="$DIR/ref" --jobs="$JOBS" --workers=1 --quiet \
    --print-values > "$DIR/ref.out" || { echo "reference run failed"; exit 1; }
grep '^values' "$DIR/ref.out" | sort > "$DIR/ref.values"
[ -s "$DIR/ref.values" ] || { echo "reference produced no values"; exit 1; }

# Case 1 — crash simulation: halt after 2 slices; fedshapd signals the
# halt with exit code 17.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=1 \
    --kill-after=2 --quiet > "$DIR/crash1.out"
status=$?
if [ "$status" -ne 17 ]; then
    echo "expected halt exit code 17, got $status"
    cat "$DIR/crash1.out"
    exit 1
fi

# Restart over the same state dir, re-passing the same job file (the
# "rerun the same command" flow): identical specs resume instead of
# colliding.
"$BIN" --state-dir="$DIR/crash" --jobs="$JOBS" --workers=2 --quiet \
    --print-values \
    > "$DIR/crash2.out" || { echo "resumed run failed"; cat "$DIR/crash2.out"; exit 1; }
grep '^values' "$DIR/crash2.out" | sort > "$DIR/crash.values"

if ! diff "$DIR/ref.values" "$DIR/crash.values"; then
    echo "resumed values differ from the uninterrupted run"
    exit 1
fi
echo "kill+restart resumed all jobs bit-identically"

# Case 2 — sharded cluster with a scripted worker death: two fork()ed
# worker subprocesses, the one owning shard 0 dies after its 3rd fresh
# training (FEDSHAP_FAULT_SPEC; FEDSHAP_FAULT_SHARD targets the script).
# The coordinator must reassign the dead worker's coalitions to the
# survivor and print values bit-identical to the single-process
# reference — the acceptance invariant of the cluster work.
FEDSHAP_FAULT_SPEC='kill-worker:after=3' FEDSHAP_FAULT_SHARD=0 \
    "$BIN" --state-dir="$DIR/cluster" --jobs="$JOBS" --workers=1 \
    --cluster-workers=2 --cluster-mode=fork --quiet --print-values \
    > "$DIR/cluster.out" \
    || { echo "cluster run failed"; cat "$DIR/cluster.out"; exit 1; }
grep '^values' "$DIR/cluster.out" | sort > "$DIR/cluster.values"

if ! diff "$DIR/ref.values" "$DIR/cluster.values"; then
    echo "cluster values differ from the single-process run"
    exit 1
fi

# The fault must actually have fired and been survived: the summary
# line reports the lost worker and at least one reassigned coalition.
CLUSTER_LINE=$(grep '^\[fedshapd\] cluster ' "$DIR/cluster.out")
echo "$CLUSTER_LINE"
if echo "$CLUSTER_LINE" | grep -q 'lost=0'; then
    echo "cluster case never lost its scripted worker"
    exit 1
fi
if echo "$CLUSTER_LINE" | grep -q 'reassigned=0'; then
    echo "cluster case lost a worker but reassigned nothing"
    exit 1
fi
echo "cluster survived a worker death bit-identically"
rm -rf "$DIR"
exit 0
