#include "data/statistics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"

namespace fedshap {
namespace {

TEST(SummarizeTest, EmptyDataset) {
  DatasetSummary summary = Summarize(Dataset());
  EXPECT_EQ(summary.rows, 0u);
  EXPECT_TRUE(summary.feature_mean.empty());
  EXPECT_DOUBLE_EQ(summary.label_entropy_bits, 0.0);
}

TEST(SummarizeTest, MeanAndStddevHandComputed) {
  Result<Dataset> data = Dataset::Create(2, 2);
  ASSERT_TRUE(data.ok());
  data->Append({0.0f, 10.0f}, 0.0f);
  data->Append({2.0f, 10.0f}, 1.0f);
  data->Append({4.0f, 10.0f}, 1.0f);
  DatasetSummary summary = Summarize(*data);
  EXPECT_NEAR(summary.feature_mean[0], 2.0, 1e-9);
  EXPECT_NEAR(summary.feature_mean[1], 10.0, 1e-9);
  EXPECT_NEAR(summary.feature_stddev[0], std::sqrt(8.0 / 3.0), 1e-9);
  EXPECT_NEAR(summary.feature_stddev[1], 0.0, 1e-9);
  ASSERT_EQ(summary.class_counts.size(), 2u);
  EXPECT_EQ(summary.class_counts[0], 1u);
  EXPECT_EQ(summary.class_counts[1], 2u);
}

TEST(SummarizeTest, EntropyUniformVsSkewed) {
  Rng rng(1);
  Result<Dataset> uniform = GenerateBlobs(4, 3, 4.0, 2000, rng);
  ASSERT_TRUE(uniform.ok());
  DatasetSummary uniform_summary = Summarize(*uniform);
  EXPECT_NEAR(uniform_summary.label_entropy_bits, 2.0, 0.05);

  // Single-class shard: zero entropy.
  Result<Dataset> single = Dataset::Create(3, 4);
  ASSERT_TRUE(single.ok());
  for (int i = 0; i < 50; ++i) single->Append({0.f, 0.f, 0.f}, 2.0f);
  EXPECT_DOUBLE_EQ(Summarize(*single).label_entropy_bits, 0.0);
}

TEST(SummarizeTest, ToStringMentionsShape) {
  Rng rng(2);
  Result<Dataset> data = GenerateBlobs(3, 4, 4.0, 90, rng);
  ASSERT_TRUE(data.ok());
  const std::string s = SummaryToString(Summarize(*data));
  EXPECT_NE(s.find("rows=90"), std::string::npos);
  EXPECT_NE(s.find("classes=3"), std::string::npos);
}

TEST(ClientDriftTest, IidPartitionHasLowDrift) {
  Rng rng(3);
  Result<Dataset> pool = GenerateBlobs(4, 6, 4.0, 4000, rng);
  ASSERT_TRUE(pool.ok());
  PartitionConfig iid;
  iid.scheme = PartitionScheme::kSameSizeSameDist;
  iid.num_clients = 5;
  Result<std::vector<Dataset>> iid_clients =
      PartitionDataset(*pool, iid, rng);
  ASSERT_TRUE(iid_clients.ok());

  Result<std::vector<Dataset>> skewed_clients =
      PartitionDirichlet(*pool, 5, 0.1, rng);
  ASSERT_TRUE(skewed_clients.ok());

  const double iid_drift = ClientDrift(*iid_clients);
  const double skewed_drift = ClientDrift(*skewed_clients);
  EXPECT_LT(iid_drift, skewed_drift);
}

TEST(ClientDriftTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ClientDrift({}), 0.0);
  Rng rng(4);
  Result<Dataset> one = GenerateBlobs(2, 3, 4.0, 50, rng);
  ASSERT_TRUE(one.ok());
  EXPECT_DOUBLE_EQ(ClientDrift({*one}), 0.0);
  // Empty clients are skipped.
  EXPECT_DOUBLE_EQ(ClientDrift({*one, Dataset()}), 0.0);
}

}  // namespace
}  // namespace fedshap
