#include "fl/utility.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/partition.h"
#include "data/synthetic.h"
#include "ml/kernel_backend.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

std::unique_ptr<FedAvgUtility> MakeFedAvgUtility(int n = 3,
                                                 uint64_t seed = 1) {
  Rng rng(seed);
  Result<Dataset> pool = GenerateBlobs(2, 4, 5.0, 200 * n + 300, rng);
  FEDSHAP_CHECK(pool.ok());
  auto [train, test] = pool->Split(1.0 - 300.0 / pool->size(), rng);
  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeSameDist;
  part.num_clients = n;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  FEDSHAP_CHECK(clients.ok());
  LogisticRegression prototype(4, 2);
  Rng init(seed + 99);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;
  config.local.learning_rate = 0.3;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients).value(), std::move(test), prototype, config);
  FEDSHAP_CHECK(utility.ok());
  return std::move(utility).value();
}

TEST(FedAvgUtilityTest, EmptyCoalitionIsInitialModelUtility) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility();
  Result<double> u_empty = utility->Evaluate(Coalition());
  ASSERT_TRUE(u_empty.ok());
  // Untrained binary classifier: accuracy around chance, certainly not
  // perfect.
  EXPECT_GE(*u_empty, 0.0);
  EXPECT_LE(*u_empty, 1.0);
}

TEST(FedAvgUtilityTest, TrainingAddsUtility) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility();
  Result<double> u_empty = utility->Evaluate(Coalition());
  Result<double> u_full = utility->Evaluate(Coalition::Full(3));
  ASSERT_TRUE(u_empty.ok());
  ASSERT_TRUE(u_full.ok());
  EXPECT_GT(*u_full, *u_empty);
  EXPECT_GT(*u_full, 0.85);  // separable blobs train well
}

TEST(FedAvgUtilityTest, DeterministicPerCoalition) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility();
  const Coalition s = Coalition::Of({0, 2});
  Result<double> u1 = utility->Evaluate(s);
  Result<double> u2 = utility->Evaluate(s);
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_DOUBLE_EQ(*u1, *u2);
}

TEST(FedAvgUtilityTest, RejectsUnknownClients) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility();
  EXPECT_FALSE(utility->Evaluate(Coalition::Of({7})).ok());
}

TEST(FedAvgUtilityTest, CreateValidation) {
  LogisticRegression prototype(4, 2);
  FedAvgConfig config;
  EXPECT_FALSE(
      FedAvgUtility::Create({}, Dataset(), prototype, config).ok());
  Rng rng(1);
  Result<Dataset> data = GenerateBlobs(2, 4, 4.0, 50, rng);
  ASSERT_TRUE(data.ok());
  // Empty test set rejected.
  EXPECT_FALSE(
      FedAvgUtility::Create({*data}, Dataset(), prototype, config).ok());
}

TEST(FedAvgUtilityTest, NegativeLossMetric) {
  Rng rng(2);
  Result<Dataset> pool = GenerateBlobs(2, 4, 5.0, 500, rng);
  ASSERT_TRUE(pool.ok());
  auto [train, test] = pool->Split(0.6, rng);
  LogisticRegression prototype(4, 2);
  Rng init(3);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  Result<std::unique_ptr<FedAvgUtility>> utility =
      FedAvgUtility::Create({train}, test, prototype, config,
                            UtilityMetric::kNegativeLoss);
  ASSERT_TRUE(utility.ok());
  Result<double> u_empty = (*utility)->Evaluate(Coalition());
  Result<double> u_full = (*utility)->Evaluate(Coalition::Full(1));
  ASSERT_TRUE(u_empty.ok());
  ASSERT_TRUE(u_full.ok());
  EXPECT_LT(*u_empty, 0.0);       // negative loss is negative
  EXPECT_GT(*u_full, *u_empty);   // training reduces loss
}

TEST(FedAvgUtilityTest, EvaluateParametersMatchesPrototypeEval) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility();
  Result<double> via_params =
      utility->EvaluateParameters(utility->prototype().GetParameters());
  Result<double> via_empty = utility->Evaluate(Coalition());
  ASSERT_TRUE(via_params.ok());
  ASSERT_TRUE(via_empty.ok());
  EXPECT_DOUBLE_EQ(*via_params, *via_empty);
}

// The fused multi-coalition dispatch stacks every trained model's affine
// scorer into one wide GEMM per test chunk. Training is bit-identical to
// Evaluate; only the scoring arithmetic regroups, so each fused accuracy
// must agree with its per-coalition counterpart within the kernel
// tolerance contract — on every available kernel backend.
TEST(FedAvgUtilityTest, EvaluateBatchFusedMatchesEvaluatePerBackend) {
  std::unique_ptr<FedAvgUtility> utility = MakeFedAvgUtility(4, 7);
  std::vector<Coalition> batch;
  ForEachSubsetOf(Coalition::Full(4),
                  [&](const Coalition& c) { batch.push_back(c); });
  ASSERT_EQ(batch.size(), 16u);

  std::vector<double> reference;
  for (const Coalition& c : batch) {
    Result<double> u = utility->Evaluate(c);
    ASSERT_TRUE(u.ok());
    reference.push_back(*u);
  }

  const KernelBackend original = SelectedKernelBackend();
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kAvx512}) {
    if (!KernelBackendAvailable(backend)) continue;
    ASSERT_TRUE(SetKernelBackend(backend).ok());
    Result<std::vector<double>> fused = utility->EvaluateBatchFused(batch);
    ASSERT_TRUE(fused.ok());
    ASSERT_EQ(fused->size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const double tolerance =
          kKernelAbsTol + kKernelRelTol * std::fabs(reference[i]);
      EXPECT_NEAR((*fused)[i], reference[i], tolerance)
          << "coalition " << i << " on backend "
          << KernelBackendName(backend);
    }
  }
  ASSERT_TRUE(SetKernelBackend(original).ok());
}

// The base-class fused dispatch (utilities without an affine scorer or a
// non-accuracy metric) must degrade to exactly the per-coalition path.
TEST(FedAvgUtilityTest, EvaluateBatchFusedLossMetricMatchesExactly) {
  Rng rng(31);
  Result<Dataset> pool = GenerateBlobs(2, 4, 5.0, 900, rng);
  ASSERT_TRUE(pool.ok());
  auto [train, test] = pool->Split(0.7, rng);
  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeSameDist;
  part.num_clients = 3;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  ASSERT_TRUE(clients.ok());
  LogisticRegression prototype(4, 2);
  Rng init(131);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 2;
  Result<std::unique_ptr<FedAvgUtility>> utility =
      FedAvgUtility::Create(std::move(clients).value(), std::move(test),
                            prototype, config, UtilityMetric::kNegativeLoss);
  ASSERT_TRUE(utility.ok());

  std::vector<Coalition> batch;
  ForEachSubsetOf(Coalition::Full(3),
                  [&](const Coalition& c) { batch.push_back(c); });
  Result<std::vector<double>> fused = (*utility)->EvaluateBatchFused(batch);
  ASSERT_TRUE(fused.ok());
  for (size_t i = 0; i < batch.size(); ++i) {
    Result<double> u = (*utility)->Evaluate(batch[i]);
    ASSERT_TRUE(u.ok());
    // Loss scoring is not fused: identical code path, identical bits.
    EXPECT_DOUBLE_EQ((*fused)[i], *u) << "coalition " << i;
  }
}

TEST(GbdtUtilityTest, MonotoneOnNestedCoalitions) {
  Rng rng(4);
  TabularConfig tab;
  Result<FederatedSource> source = GenerateTabular(tab, 1400, rng);
  ASSERT_TRUE(source.ok());
  auto [train, test] = source->data.Split(0.7, rng);
  PartitionConfig part;
  part.num_clients = 3;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  ASSERT_TRUE(clients.ok());
  GbdtConfig config;
  config.num_trees = 10;
  Result<std::unique_ptr<GbdtUtility>> utility =
      GbdtUtility::Create(std::move(clients).value(), test, config);
  ASSERT_TRUE(utility.ok());
  Result<double> u_empty = (*utility)->Evaluate(Coalition());
  Result<double> u_one = (*utility)->Evaluate(Coalition::Of({0}));
  Result<double> u_all = (*utility)->Evaluate(Coalition::Full(3));
  ASSERT_TRUE(u_empty.ok());
  ASSERT_TRUE(u_one.ok());
  ASSERT_TRUE(u_all.ok());
  EXPECT_GT(*u_one, *u_empty);
  EXPECT_GE(*u_all + 0.02, *u_one);  // more data should not hurt much
}

TEST(TableUtilityTest, PaperTableOneValues) {
  TableUtility table = testing_util::PaperTableOne();
  EXPECT_EQ(table.num_clients(), 3);
  Result<double> u_empty = table.Evaluate(Coalition());
  Result<double> u_02 = table.Evaluate(Coalition::Of({0, 2}));
  Result<double> u_full = table.Evaluate(Coalition::Full(3));
  ASSERT_TRUE(u_empty.ok());
  EXPECT_DOUBLE_EQ(*u_empty, 0.10);
  EXPECT_DOUBLE_EQ(*u_02, 0.90);
  EXPECT_DOUBLE_EQ(*u_full, 0.96);
}

TEST(TableUtilityTest, FromFunctionMatchesFunction) {
  Result<TableUtility> table = TableUtility::FromFunction(
      4, [](const Coalition& c) { return c.Count() * 1.5; });
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table->Evaluate(Coalition::Of({1, 3})).value(), 3.0);
  EXPECT_DOUBLE_EQ(table->Evaluate(Coalition()).value(), 0.0);
}

TEST(TableUtilityTest, Validation) {
  EXPECT_FALSE(TableUtility::FromValues(0, {1.0}).ok());
  EXPECT_FALSE(TableUtility::FromValues(2, {1.0, 2.0}).ok());  // needs 4
  EXPECT_FALSE(TableUtility::FromValues(21, {}).ok());
  Result<TableUtility> table = TableUtility::FromValues(2, {0, 1, 2, 3});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->Evaluate(Coalition::Of({5})).ok());
}

TEST(LinearRegressionUtilityTest, MeanUtilityFollowsClosedForm) {
  LinearRegressionUtility::Params params;
  params.num_clients = 5;
  params.samples_per_client = 40;
  params.feature_dim = 4;
  params.noise_mean = 2.0;
  params.initial_mse = 8.0;
  LinearRegressionUtility utility(params);
  // k=0: denominator <= 0 -> clamped to -m0.
  EXPECT_DOUBLE_EQ(utility.MeanUtility(0), -8.0);
  // k=2: -2*4 / (80 - 5) = -8/75.
  EXPECT_NEAR(utility.MeanUtility(2), -8.0 / 75.0, 1e-12);
  // Monotone increasing in k.
  for (int k = 1; k < 5; ++k) {
    EXPECT_GT(utility.MeanUtility(k + 1), utility.MeanUtility(k));
  }
}

TEST(LinearRegressionUtilityTest, NoiseScalesWithCoalitionSize) {
  // Per-client noise terms are independent, so across realizations the
  // noise std grows like sqrt(|S|): std at |S|=9 ~ 3x std at |S|=1.
  LinearRegressionUtility::Params params;
  params.num_clients = 10;
  params.noise_scale = 0.001;
  LinearRegressionUtility utility(params);
  auto noise_std = [&](const Coalition& c) {
    const int k = c.Count();
    double sum = 0.0, sum_sq = 0.0;
    const int reps = 400;
    for (int t = 0; t < reps; ++t) {
      utility.Reseed(9000 + t);
      Result<double> u = utility.Evaluate(c);
      EXPECT_TRUE(u.ok());
      const double noise = *u - utility.MeanUtility(k);
      sum += noise;
      sum_sq += noise * noise;
    }
    const double mean = sum / reps;
    return std::sqrt(sum_sq / reps - mean * mean);
  };
  const double std_one = noise_std(Coalition::Of({0}));
  const double std_nine = noise_std(Coalition::Full(9));
  EXPECT_GT(std_nine, std_one * 2.0);
  EXPECT_LT(std_nine, std_one * 4.5);
}

TEST(LinearRegressionUtilityTest, NoiseIsSharedAcrossCoalitions) {
  // The marginal U(S u {i}) - U(S) carries only client i's noise term
  // (Eq. 9's cancellation): verify the noise of {0,1} minus {1} equals the
  // noise of {0}.
  LinearRegressionUtility::Params params;
  params.num_clients = 5;
  params.noise_scale = 0.01;
  LinearRegressionUtility utility(params);
  const double noise_01 =
      utility.Evaluate(Coalition::Of({0, 1})).value() -
      utility.MeanUtility(2);
  const double noise_1 =
      utility.Evaluate(Coalition::Of({1})).value() - utility.MeanUtility(1);
  const double noise_0 =
      utility.Evaluate(Coalition::Of({0})).value() - utility.MeanUtility(1);
  EXPECT_NEAR(noise_01 - noise_1, noise_0, 1e-12);
}

TEST(LinearRegressionUtilityTest, ReseedChangesRealization) {
  LinearRegressionUtility::Params params;
  params.noise_scale = 0.01;
  LinearRegressionUtility utility(params);
  const Coalition s = Coalition::Of({0, 1, 2});
  Result<double> before = utility.Evaluate(s);
  utility.Reseed(999);
  Result<double> after = utility.Evaluate(s);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*before, *after);
}

TEST(LinearRegressionUtilityTest, DeterministicWithoutReseed) {
  LinearRegressionUtility::Params params;
  params.noise_scale = 0.01;
  LinearRegressionUtility utility(params);
  const Coalition s = Coalition::Of({1, 4});
  Result<double> a = utility.Evaluate(s);
  Result<double> b = utility.Evaluate(s);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

}  // namespace
}  // namespace fedshap
