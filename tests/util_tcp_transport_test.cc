// The TCP transport layer in isolation: endpoint parsing, the
// listener/connector round trip, the bounded SIGPIPE-safe send path
// (the regression this file exists for — Send used to block forever on
// a stalled peer), the scripted network faults (partition, delay,
// corruption, refused connects), and the deterministic reconnect
// backoff schedule the worker client follows. The cluster suites prove
// the protocol is transport-agnostic; this file proves the transport
// itself honors its deadlines.

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault_injector.h"
#include "util/framing.h"
#include "util/status.h"
#include "util/tcp_transport.h"

namespace fedshap {
namespace {

using Clock = std::chrono::steady_clock;

int ElapsedMs(Clock::time_point since) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - since)
                              .count());
}

std::unique_ptr<FaultInjector> MustParse(const std::string& spec) {
  Result<std::unique_ptr<FaultInjector>> injector = FaultInjector::Parse(spec);
  EXPECT_TRUE(injector.ok()) << injector.status();
  return injector.ok() ? std::move(injector).value() : nullptr;
}

// ---------------------------------------------------------------------------
// Endpoint parsing
// ---------------------------------------------------------------------------

TEST(TcpEndpointTest, ParsesHostAndPort) {
  Result<TcpEndpoint> endpoint = TcpEndpoint::Parse("127.0.0.1:8471");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  EXPECT_EQ(endpoint->host, "127.0.0.1");
  EXPECT_EQ(endpoint->port, 8471);
  EXPECT_EQ(endpoint->ToString(), "127.0.0.1:8471");

  endpoint = TcpEndpoint::Parse("localhost:0");
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  EXPECT_EQ(endpoint->host, "localhost");
  EXPECT_EQ(endpoint->port, 0);
}

TEST(TcpEndpointTest, RejectsMalformedEndpoints) {
  EXPECT_FALSE(TcpEndpoint::Parse("").ok());
  EXPECT_FALSE(TcpEndpoint::Parse("no-port-here").ok());
  EXPECT_FALSE(TcpEndpoint::Parse(":8080").ok());
  EXPECT_FALSE(TcpEndpoint::Parse("host:").ok());
  EXPECT_FALSE(TcpEndpoint::Parse("host:notaport").ok());
  EXPECT_FALSE(TcpEndpoint::Parse("host:70000").ok());
  EXPECT_FALSE(TcpEndpoint::Parse("host:-1").ok());
}

// ---------------------------------------------------------------------------
// Listener / connector round trip
// ---------------------------------------------------------------------------

TEST(TcpTransportTest, ListenConnectAcceptRoundTripsFrames) {
  Result<std::unique_ptr<TcpListener>> listener =
      TcpListener::Listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok()) << listener.status();
  ASSERT_GT((*listener)->port(), 0);  // port 0 resolved to a real port

  Result<std::unique_ptr<FrameChannel>> client =
      TcpConnect({"127.0.0.1", (*listener)->port()}, /*connect_timeout_ms=*/
                 2000);
  ASSERT_TRUE(client.ok()) << client.status();
  Result<std::unique_ptr<FrameChannel>> server = (*listener)->Accept(2000);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_NE(*server, nullptr);

  // Both directions, payloads with embedded NULs (the framing is binary).
  const std::string payload("req\0uest", 8);
  ASSERT_TRUE((*client)->Send(7, payload).ok());
  Result<std::optional<Frame>> received = (*server)->Recv(2000);
  ASSERT_TRUE(received.ok()) << received.status();
  ASSERT_TRUE(received->has_value());
  EXPECT_EQ((*received)->type, 7u);
  EXPECT_EQ((*received)->payload, payload);

  ASSERT_TRUE((*server)->Send(8, "reply").ok());
  received = (*client)->Recv(2000);
  ASSERT_TRUE(received.ok()) << received.status();
  ASSERT_TRUE(received->has_value());
  EXPECT_EQ((*received)->type, 8u);
  EXPECT_EQ((*received)->payload, "reply");
}

TEST(TcpTransportTest, AcceptTimesOutWithoutConnection) {
  Result<std::unique_ptr<TcpListener>> listener =
      TcpListener::Listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok()) << listener.status();
  const Clock::time_point start = Clock::now();
  Result<std::unique_ptr<FrameChannel>> channel = (*listener)->Accept(100);
  ASSERT_TRUE(channel.ok()) << channel.status();
  EXPECT_EQ(*channel, nullptr);  // timeout, not an error
  EXPECT_GE(ElapsedMs(start), 90);
}

TEST(TcpTransportTest, ConnectToClosedPortFailsUnavailable) {
  // Bind a port, then free it: connecting to it afterwards is refused
  // locally (no external network needed), which must surface as
  // Unavailable — the retryable class — not DeadlineExceeded.
  int port = 0;
  {
    Result<std::unique_ptr<TcpListener>> listener =
        TcpListener::Listen({"127.0.0.1", 0});
    ASSERT_TRUE(listener.ok()) << listener.status();
    port = (*listener)->port();
  }
  Result<std::unique_ptr<FrameChannel>> channel =
      TcpConnect({"127.0.0.1", port}, 2000);
  ASSERT_FALSE(channel.ok());
  EXPECT_EQ(channel.status().code(), StatusCode::kUnavailable)
      << channel.status();
}

TEST(TcpTransportTest, RefuseConnectFaultFailsTheDialDeterministically) {
  Result<std::unique_ptr<TcpListener>> listener =
      TcpListener::Listen({"127.0.0.1", 0});
  ASSERT_TRUE(listener.ok()) << listener.status();
  const TcpEndpoint endpoint{"127.0.0.1", (*listener)->port()};

  std::unique_ptr<FaultInjector> faults = MustParse("refuse-connect:nth=1");
  ASSERT_NE(faults, nullptr);
  // First dial is refused by the script, before any packet goes out.
  Result<std::unique_ptr<FrameChannel>> channel =
      TcpConnect(endpoint, 2000, faults.get());
  ASSERT_FALSE(channel.ok());
  EXPECT_EQ(channel.status().code(), StatusCode::kUnavailable);
  // Second dial (event 2, past nth=1) goes through to the live listener.
  channel = TcpConnect(endpoint, 2000, faults.get());
  EXPECT_TRUE(channel.ok()) << channel.status();
  EXPECT_EQ(faults->events(FaultSite::kRefuseConnect), 2u);
  EXPECT_EQ(faults->fired(FaultSite::kRefuseConnect), 1u);
}

// ---------------------------------------------------------------------------
// Bounded send: the S1 regression
// ---------------------------------------------------------------------------

// A peer that never drains its socket must turn Send() into a
// DeadlineExceeded within the configured budget — before this fix the
// blocking write() wedged the sender thread forever (and a dead peer
// raised SIGPIPE, fatal to fork-mode workers). This test fails by
// hanging on the pre-fix code.
TEST(FrameChannelDeadlineTest, SendToStalledPeerFailsWithinDeadline) {
  auto pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  FrameChannel* sender = pair->first.get();

  // Shrink the kernel buffers so a single large frame overfills them.
  const int small = 4096;
  setsockopt(sender->fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(pair->second->fd(), SOL_SOCKET, SO_RCVBUF, &small,
             sizeof(small));
  sender->set_send_timeout_ms(200);

  const std::string payload(4 << 20, 'x');  // 4 MiB, nobody reading
  const Clock::time_point start = Clock::now();
  Status status = sender->Send(1, payload);
  const int elapsed = ElapsedMs(start);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded) << status;
  // Bounded: the deadline, not the peer, ended the wait. Generous upper
  // bound for slow CI; the pre-fix behavior is infinite.
  EXPECT_GE(elapsed, 150);
  EXPECT_LT(elapsed, 5000);
}

TEST(FrameChannelDeadlineTest, SendToClosedPeerFailsWithoutSignal) {
  // A dead peer must read as an error Status, never SIGPIPE (which
  // would kill the process — gtest would report a crash, not a failure).
  auto pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  pair->second.reset();  // peer is gone
  FrameChannel* sender = pair->first.get();
  sender->set_send_timeout_ms(500);
  // The first small send may land in the kernel buffer of the
  // half-closed socket; keep writing until the error surfaces.
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = sender->Send(1, std::string(64 << 10, 'x'));
  }
  EXPECT_FALSE(status.ok());
}

// ---------------------------------------------------------------------------
// Scripted network faults on the send path
// ---------------------------------------------------------------------------

TEST(NetworkFaultTest, PartitionTearsDownTheConnection) {
  auto pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  std::unique_ptr<FaultInjector> faults = MustParse("partition:nth=2");
  ASSERT_NE(faults, nullptr);

  // Frame 1 passes, frame 2 hits the partition.
  ASSERT_TRUE(pair->first->SendFaulted(1, "ok", faults.get()).ok());
  Status status = pair->first->SendFaulted(1, "lost", faults.get());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status;

  // The peer sees the first frame, then EOF — the split killed the
  // connection, not just the one frame.
  Result<std::optional<Frame>> received = pair->second->Recv(1000);
  ASSERT_TRUE(received.ok()) << received.status();
  ASSERT_TRUE(received->has_value());
  EXPECT_EQ((*received)->payload, "ok");
  received = pair->second->Recv(1000);
  EXPECT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), StatusCode::kNotFound);

  // The torn channel stays torn for the sender, too.
  EXPECT_FALSE(pair->first->SendFaulted(1, "after", faults.get()).ok());
}

TEST(NetworkFaultTest, DelayFrameHoldsTheSendForItsMagnitude) {
  auto pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  std::unique_ptr<FaultInjector> faults =
      MustParse("delay-frame:nth=1,ms=120");
  ASSERT_NE(faults, nullptr);
  EXPECT_EQ(faults->param_ms(FaultSite::kDelayFrame), 120u);

  const Clock::time_point start = Clock::now();
  ASSERT_TRUE(pair->first->SendFaulted(1, "slow", faults.get()).ok());
  EXPECT_GE(ElapsedMs(start), 110);  // slept through the scripted delay

  // Delayed, not dropped: the frame still arrives intact.
  Result<std::optional<Frame>> received = pair->second->Recv(1000);
  ASSERT_TRUE(received.ok()) << received.status();
  ASSERT_TRUE(received->has_value());
  EXPECT_EQ((*received)->payload, "slow");

  // Event 2 is past nth=1: no delay.
  const Clock::time_point fast_start = Clock::now();
  ASSERT_TRUE(pair->first->SendFaulted(1, "fast", faults.get()).ok());
  EXPECT_LT(ElapsedMs(fast_start), 100);
}

TEST(NetworkFaultTest, CorruptFrameIsRejectedByTheReceiver) {
  auto pair = CreateChannelPair();
  ASSERT_TRUE(pair.ok()) << pair.status();
  std::unique_ptr<FaultInjector> faults = MustParse("corrupt-frame:nth=1");
  ASSERT_NE(faults, nullptr);

  // The sender flips a payload byte after the CRC was computed; the wire
  // write itself succeeds.
  ASSERT_TRUE(
      pair->first->SendFaulted(3, "payload-to-corrupt", faults.get()).ok());
  // The receiver's CRC check must reject the frame as torn — an error
  // Status, never a silently wrong payload.
  Result<std::optional<Frame>> received = pair->second->Recv(1000);
  EXPECT_FALSE(received.ok());
  EXPECT_NE(received.status().code(), StatusCode::kNotFound)
      << "corruption must not read as a clean close: "
      << received.status();
}

// ---------------------------------------------------------------------------
// Reconnect backoff schedule
// ---------------------------------------------------------------------------

TEST(ReconnectBackoffTest, IsDeterministicPerSeed) {
  for (int attempt = 0; attempt < 12; ++attempt) {
    EXPECT_EQ(ReconnectBackoffMs(attempt, 50, 2000, 7),
              ReconnectBackoffMs(attempt, 50, 2000, 7))
        << "attempt " << attempt;
  }
}

TEST(ReconnectBackoffTest, GrowsExponentiallyAndCaps) {
  const int base = 50, cap = 2000;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const int wait = ReconnectBackoffMs(attempt, base, cap, 42);
    const long shifted = static_cast<long>(base) << std::min(attempt, 16);
    const int floor = static_cast<int>(std::min<long>(cap, shifted));
    EXPECT_GE(wait, floor) << "attempt " << attempt;
    EXPECT_LT(wait, floor + base) << "attempt " << attempt;  // jitter < base
  }
  // Deep attempts sit at the cap (plus jitter), never overflow.
  EXPECT_GE(ReconnectBackoffMs(60, base, cap, 42), cap);
  EXPECT_LT(ReconnectBackoffMs(60, base, cap, 42), cap + base);
}

TEST(ReconnectBackoffTest, SeedsDecorrelateJitter) {
  // Two workers with different seeds must not back off in lockstep:
  // across attempts 0..15, at least one wait differs.
  bool differs = false;
  for (int attempt = 0; attempt < 16 && !differs; ++attempt) {
    differs = ReconnectBackoffMs(attempt, 50, 2000, 1) !=
              ReconnectBackoffMs(attempt, 50, 2000, 2);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace fedshap
