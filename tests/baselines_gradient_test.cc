#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "baselines/dig_fl.h"
#include "util/logging.h"
#include "baselines/gtg_shapley.h"
#include "baselines/lambda_mr.h"
#include "baselines/or_baseline.h"
#include "core/exact.h"
#include "core/valuation_metrics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "ml/logistic_regression.h"

namespace fedshap {
namespace {

/// Small FL setup shared by the gradient-baseline tests: 4 clients on
/// separable blobs, logistic regression, 4 rounds.
class GradientBaselines : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(101);
    Result<Dataset> pool = GenerateBlobs(2, 4, 5.0, 1200, rng);
    ASSERT_TRUE(pool.ok());
    auto [train, test] = pool->Split(0.75, rng);
    PartitionConfig part;
    part.scheme = PartitionScheme::kSameSizeNoisyLabel;
    part.num_clients = 4;
    part.max_label_noise = 0.35;  // quality gradient across clients
    Result<std::vector<Dataset>> clients =
        PartitionDataset(train, part, rng);
    ASSERT_TRUE(clients.ok());
    LogisticRegression prototype(4, 2);
    Rng init(5);
    prototype.InitializeParameters(init);
    FedAvgConfig config;
    config.rounds = 4;
    config.local.epochs = 1;
    config.local.learning_rate = 0.3;
    Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
        std::move(clients).value(), std::move(test), prototype, config);
    ASSERT_TRUE(utility.ok());
    utility_ = std::move(utility).value();
    Result<std::unique_ptr<ReconstructionContext>> context =
        ReconstructionContext::Create(*utility_);
    ASSERT_TRUE(context.ok());
    context_ = std::move(context).value();
  }

  std::vector<double> ExactValues() {
    UtilityCache cache(utility_.get());
    UtilitySession session(&cache);
    Result<ValuationResult> exact = ExactShapleyMc(session);
    FEDSHAP_CHECK(exact.ok());
    return exact->values;
  }

  std::unique_ptr<FedAvgUtility> utility_;
  std::unique_ptr<ReconstructionContext> context_;
};

TEST_F(GradientBaselines, ReconstructionContextBasics) {
  EXPECT_EQ(context_->num_clients(), 4);
  EXPECT_EQ(context_->num_rounds(), 4);
  EXPECT_GT(context_->grand_training_seconds(), 0.0);
}

TEST_F(GradientBaselines, FullCoalitionReconstructionMatchesRealTraining) {
  // Reconstructed grand coalition == actually trained grand coalition,
  // so their utilities agree.
  Result<double> reconstructed =
      context_->EvaluateReconstructed(Coalition::Full(4));
  Result<double> trained = utility_->Evaluate(Coalition::Full(4));
  ASSERT_TRUE(reconstructed.ok());
  ASSERT_TRUE(trained.ok());
  EXPECT_NEAR(*reconstructed, *trained, 1e-9);
}

TEST_F(GradientBaselines, EmptyCoalitionReconstructionIsInitialModel) {
  Result<double> reconstructed =
      context_->EvaluateReconstructed(Coalition());
  Result<double> initial = utility_->Evaluate(Coalition());
  ASSERT_TRUE(reconstructed.ok());
  ASSERT_TRUE(initial.ok());
  EXPECT_NEAR(*reconstructed, *initial, 1e-12);
}

TEST_F(GradientBaselines, GlobalAfterRoundBoundsChecked) {
  EXPECT_TRUE(context_->EvaluateGlobalAfterRound(0).ok());
  EXPECT_TRUE(context_->EvaluateGlobalAfterRound(4).ok());
  EXPECT_FALSE(context_->EvaluateGlobalAfterRound(5).ok());
  EXPECT_FALSE(context_->EvaluateGlobalAfterRound(-1).ok());
  EXPECT_FALSE(context_->EvaluateRoundSubset(4, Coalition()).ok());
}

TEST_F(GradientBaselines, TrainingImprovesAcrossRounds) {
  Result<double> first = context_->EvaluateGlobalAfterRound(0);
  Result<double> last = context_->EvaluateGlobalAfterRound(4);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(last.ok());
  EXPECT_GT(*last, *first);
}

TEST_F(GradientBaselines, OrProducesReasonableRanking) {
  Result<ValuationResult> or_result = OrShapley(*context_);
  ASSERT_TRUE(or_result.ok());
  EXPECT_EQ(or_result->values.size(), 4u);
  EXPECT_EQ(or_result->num_trainings, 1u);
  EXPECT_EQ(or_result->num_evaluations, 16u);  // 2^4 reconstructions
  // Values must be finite and not all identical.
  double min_v = 1e18, max_v = -1e18;
  for (double v : or_result->values) {
    ASSERT_TRUE(std::isfinite(v));
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_GT(max_v - min_v, 1e-6);
}

TEST_F(GradientBaselines, OrEfficiencyOverReconstructedGame) {
  // OR computes an exact SV over the reconstructed utility table, so it
  // inherits efficiency with respect to *reconstructed* U(N) and U(empty).
  Result<ValuationResult> or_result = OrShapley(*context_);
  ASSERT_TRUE(or_result.ok());
  Result<double> u_full = context_->EvaluateReconstructed(Coalition::Full(4));
  Result<double> u_empty = context_->EvaluateReconstructed(Coalition());
  ASSERT_TRUE(u_full.ok());
  ASSERT_TRUE(u_empty.ok());
  EXPECT_NEAR(EfficiencyResidual(or_result->values, *u_full, *u_empty), 0.0,
              1e-9);
}

TEST_F(GradientBaselines, LambdaMrRunsAndDecayWorks) {
  LambdaMrConfig plain;
  plain.lambda = 1.0;
  Result<ValuationResult> mr = LambdaMrShapley(*context_, plain);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mr->num_evaluations, 4u * 16u);  // rounds * 2^n

  LambdaMrConfig decayed;
  decayed.lambda = 0.5;
  Result<ValuationResult> mr_decay = LambdaMrShapley(*context_, decayed);
  ASSERT_TRUE(mr_decay.ok());
  // Decay shrinks the aggregate magnitude (later rounds downweighted).
  double plain_mass = 0.0, decayed_mass = 0.0;
  for (double v : mr->values) plain_mass += std::fabs(v);
  for (double v : mr_decay->values) decayed_mass += std::fabs(v);
  EXPECT_LT(decayed_mass, plain_mass + 1e-12);
}

TEST_F(GradientBaselines, LambdaMrValidation) {
  LambdaMrConfig bad;
  bad.lambda = 0.0;
  EXPECT_FALSE(LambdaMrShapley(*context_, bad).ok());
  bad.lambda = 1.5;
  EXPECT_FALSE(LambdaMrShapley(*context_, bad).ok());
}

TEST_F(GradientBaselines, GtgRunsWithinEvaluationBudget) {
  GtgShapleyConfig config;
  config.max_permutations_per_round = 8;
  Result<ValuationResult> gtg = GtgShapley(*context_, config);
  ASSERT_TRUE(gtg.ok());
  EXPECT_EQ(gtg->values.size(), 4u);
  // Upper bound: rounds * (3 + perms * n).
  EXPECT_LE(gtg->num_evaluations,
            static_cast<size_t>(4 * (3 + 8 * 4)));
  for (double v : gtg->values) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(GradientBaselines, GtgTruncationSkipsFlatRounds) {
  GtgShapleyConfig aggressive;
  aggressive.max_permutations_per_round = 8;
  aggressive.round_truncation = 1.0;  // every round looks flat -> all skipped
  Result<ValuationResult> gtg = GtgShapley(*context_, aggressive);
  ASSERT_TRUE(gtg.ok());
  for (double v : gtg->values) EXPECT_DOUBLE_EQ(v, 0.0);
  // Only the per-round before/after global evaluations were needed.
  EXPECT_LE(gtg->num_evaluations, 8u);
}

TEST_F(GradientBaselines, DigFlProducesNonNegativeScores) {
  Result<ValuationResult> dig = DigFlShapley(*context_);
  ASSERT_TRUE(dig.ok());
  EXPECT_EQ(dig->values.size(), 4u);
  for (double v : dig->values) EXPECT_GE(v, 0.0);
  // O(R) utility evaluations only.
  EXPECT_LE(dig->num_evaluations, 8u);
  EXPECT_EQ(dig->num_trainings, 1u);
}

TEST_F(GradientBaselines, DigFlTotalsTrackGlobalImprovement) {
  // DIG-FL splits per-round positive gains, so the total assigned mass is
  // at most the summed positive round gains.
  Result<ValuationResult> dig = DigFlShapley(*context_);
  ASSERT_TRUE(dig.ok());
  double total = std::accumulate(dig->values.begin(), dig->values.end(),
                                 0.0);
  double gain_sum = 0.0;
  for (int round = 0; round < context_->num_rounds(); ++round) {
    const double before =
        context_->EvaluateGlobalAfterRound(round).value();
    const double after =
        context_->EvaluateGlobalAfterRound(round + 1).value();
    gain_sum += std::max(0.0, after - before);
  }
  EXPECT_NEAR(total, gain_sum, 1e-9);
}

TEST_F(GradientBaselines, GradientBaselinesRankQualityGradient) {
  // Clients have increasing label noise (0 cleanest, 3 noisiest). The
  // cheap gradient methods should broadly prefer cleaner clients: check
  // the cleanest client is not ranked last and the noisiest not first.
  Result<ValuationResult> or_result = OrShapley(*context_);
  ASSERT_TRUE(or_result.ok());
  const std::vector<double>& v = or_result->values;
  const int best = static_cast<int>(
      std::max_element(v.begin(), v.end()) - v.begin());
  const int worst = static_cast<int>(
      std::min_element(v.begin(), v.end()) - v.begin());
  EXPECT_NE(best, 3);
  EXPECT_NE(worst, 0);
}

TEST_F(GradientBaselines, ChargedTimeIncludesGrandTraining) {
  Result<ValuationResult> dig = DigFlShapley(*context_);
  ASSERT_TRUE(dig.ok());
  EXPECT_GE(dig->charged_seconds, context_->grand_training_seconds());
}

}  // namespace
}  // namespace fedshap
