#include "fl/fedavg.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fl/server.h"
#include "util/thread_pool.h"
#include "fl/training_log.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace fedshap {
namespace {

Dataset MakeBlobData(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> data = GenerateBlobs(2, 4, 5.0, rows, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

LogisticRegression MakePrototype(uint64_t seed = 42) {
  LogisticRegression model(4, 2);
  Rng rng(seed);
  model.InitializeParameters(rng);
  return model;
}

TEST(FedAvgAggregateTest, WeightedAverage) {
  Result<std::vector<float>> agg = FedAvgAggregate(
      {{1.0f, 2.0f}, {3.0f, 6.0f}}, {1.0, 3.0});
  ASSERT_TRUE(agg.ok());
  EXPECT_FLOAT_EQ((*agg)[0], 2.5f);  // (1*1 + 3*3)/4
  EXPECT_FLOAT_EQ((*agg)[1], 5.0f);  // (2*1 + 6*3)/4
}

TEST(FedAvgAggregateTest, SingleClientIsIdentity) {
  Result<std::vector<float>> agg = FedAvgAggregate({{7.0f, -1.0f}}, {5.0});
  ASSERT_TRUE(agg.ok());
  EXPECT_FLOAT_EQ((*agg)[0], 7.0f);
  EXPECT_FLOAT_EQ((*agg)[1], -1.0f);
}

TEST(FedAvgAggregateTest, ZeroWeightClientIgnored) {
  Result<std::vector<float>> agg =
      FedAvgAggregate({{1.0f}, {100.0f}}, {1.0, 0.0});
  ASSERT_TRUE(agg.ok());
  EXPECT_FLOAT_EQ((*agg)[0], 1.0f);
}

TEST(FedAvgAggregateTest, Validation) {
  EXPECT_FALSE(FedAvgAggregate({}, {}).ok());
  EXPECT_FALSE(FedAvgAggregate({{1.0f}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(FedAvgAggregate({{1.0f}, {1.0f, 2.0f}}, {1.0, 1.0}).ok());
  EXPECT_FALSE(FedAvgAggregate({{1.0f}}, {-1.0}).ok());
  EXPECT_FALSE(FedAvgAggregate({{1.0f}, {2.0f}}, {0.0, 0.0}).ok());
}

TEST(TrainFedAvgTest, EmptyClientListReturnsPrototype) {
  LogisticRegression prototype = MakePrototype();
  FedAvgConfig config;
  Result<std::unique_ptr<Model>> model = TrainFedAvg(prototype, {}, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->GetParameters(), prototype.GetParameters());
}

TEST(TrainFedAvgTest, ClientsWithNoDataActAsAbsent) {
  LogisticRegression prototype = MakePrototype();
  FedAvgConfig config;
  Result<Dataset> empty_data = Dataset::Create(4, 2);
  ASSERT_TRUE(empty_data.ok());
  FlClient empty_client(0, std::move(empty_data).value());
  Result<std::unique_ptr<Model>> model =
      TrainFedAvg(prototype, {&empty_client}, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->GetParameters(), prototype.GetParameters());
}

TEST(TrainFedAvgTest, TrainingImprovesUtility) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(200, 1));
  FlClient b(1, MakeBlobData(200, 2));
  Dataset test = MakeBlobData(300, 3);
  FedAvgConfig config;
  config.rounds = 6;
  config.local.epochs = 2;
  config.local.learning_rate = 0.3;
  Result<std::unique_ptr<Model>> model =
      TrainFedAvg(prototype, {&a, &b}, config);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateAccuracy(**model, test),
            EvaluateAccuracy(prototype, test));
  EXPECT_GT(EvaluateAccuracy(**model, test), 0.85);
}

TEST(TrainFedAvgTest, DeterministicForSameCoalition) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(100, 4));
  FlClient b(1, MakeBlobData(100, 5));
  FedAvgConfig config;
  Result<std::unique_ptr<Model>> m1 = TrainFedAvg(prototype, {&a, &b}, config);
  Result<std::unique_ptr<Model>> m2 = TrainFedAvg(prototype, {&a, &b}, config);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ((*m1)->GetParameters(), (*m2)->GetParameters());
}

TEST(TrainFedAvgTest, DifferentCoalitionsDrawDifferentNoise) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(100, 6));
  FlClient b(1, MakeBlobData(100, 7));
  FedAvgConfig config;
  Result<std::unique_ptr<Model>> ma = TrainFedAvg(prototype, {&a}, config);
  Result<std::unique_ptr<Model>> mab =
      TrainFedAvg(prototype, {&a, &b}, config);
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mab.ok());
  EXPECT_NE((*ma)->GetParameters(), (*mab)->GetParameters());
}

TEST(TrainFedAvgTest, ClientParallelismInvariance) {
  // The per-round client fan-out must be invisible in the result: the
  // trained parameters are bit-identical at 1, 2 and 8 workers, and
  // with the cap released to the budget. This is the determinism
  // contract that lets backends/stores ignore the worker count.
  LogisticRegression prototype = MakePrototype(91);
  std::vector<FlClient> clients;
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back(i, MakeBlobData(60 + 10 * i, 200 + i));
  }
  // One empty client: the null-player skip must hold under fan-out too.
  clients.emplace_back(6, Dataset());
  std::vector<const FlClient*> members;
  for (const FlClient& client : clients) members.push_back(&client);

  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;

  // Widen the global budget so the fan-out actually runs parallel even
  // on single-core CI machines (the invariance claim is vacuous when
  // every setting degrades to sequential).
  const int entry_total = WorkerBudget::Global().total();
  WorkerBudget::Global().SetTotal(8);
  const int entry_cap = FedAvgClientParallelism();
  std::vector<std::vector<float>> params;
  for (int workers : {1, 2, 8, 0}) {  // 0 = budget-driven (no cap)
    SetFedAvgClientParallelism(workers);
    Result<std::unique_ptr<Model>> model =
        TrainFedAvg(prototype, members, config);
    ASSERT_TRUE(model.ok()) << "workers=" << workers;
    params.push_back((*model)->GetParameters());
  }
  SetFedAvgClientParallelism(entry_cap);
  WorkerBudget::Global().SetTotal(entry_total);
  for (size_t i = 1; i < params.size(); ++i) {
    EXPECT_EQ(params[i], params[0]) << "worker setting #" << i;
  }
}

TEST(TrainFedAvgTest, ParallelClientTrainingMatchesLog) {
  // The training log is order-sensitive (client deltas in client
  // order); it must be identical under fan-out.
  LogisticRegression prototype = MakePrototype(17);
  FlClient a(0, MakeBlobData(80, 21));
  FlClient b(1, MakeBlobData(90, 22));
  FlClient c(2, MakeBlobData(70, 23));
  FedAvgConfig config;
  config.rounds = 2;

  const int entry_total = WorkerBudget::Global().total();
  WorkerBudget::Global().SetTotal(8);
  const int entry_cap = FedAvgClientParallelism();
  SetFedAvgClientParallelism(1);
  TrainingLog sequential_log;
  Result<std::unique_ptr<Model>> sequential =
      TrainFedAvg(prototype, {&a, &b, &c}, config, &sequential_log);
  SetFedAvgClientParallelism(8);
  TrainingLog parallel_log;
  Result<std::unique_ptr<Model>> parallel =
      TrainFedAvg(prototype, {&a, &b, &c}, config, &parallel_log);
  SetFedAvgClientParallelism(entry_cap);
  WorkerBudget::Global().SetTotal(entry_total);

  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ((*sequential)->GetParameters(), (*parallel)->GetParameters());
  ASSERT_EQ(sequential_log.rounds.size(), parallel_log.rounds.size());
  EXPECT_EQ(sequential_log.final_params, parallel_log.final_params);
  for (size_t r = 0; r < sequential_log.rounds.size(); ++r) {
    EXPECT_EQ(sequential_log.rounds[r].client_ids,
              parallel_log.rounds[r].client_ids);
    EXPECT_EQ(sequential_log.rounds[r].client_deltas,
              parallel_log.rounds[r].client_deltas);
  }
}

TEST(TrainFedAvgTest, ZeroRoundsReturnsInitialModel) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(50, 8));
  FedAvgConfig config;
  config.rounds = 0;
  Result<std::unique_ptr<Model>> model = TrainFedAvg(prototype, {&a}, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->GetParameters(), prototype.GetParameters());
}

TEST(TrainFedAvgTest, LogRecordsRoundsAndDeltas) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(80, 9));
  FlClient b(1, MakeBlobData(120, 10));
  FedAvgConfig config;
  config.rounds = 3;
  TrainingLog log;
  Result<std::unique_ptr<Model>> model =
      TrainFedAvg(prototype, {&a, &b}, config, &log);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(log.num_rounds(), 3);
  EXPECT_EQ(log.initial_params, prototype.GetParameters());
  EXPECT_EQ(log.final_params, (*model)->GetParameters());
  for (const RoundRecord& round : log.rounds) {
    ASSERT_EQ(round.client_ids.size(), 2u);
    EXPECT_EQ(round.client_weights[0], 80.0);
    EXPECT_EQ(round.client_weights[1], 120.0);
    EXPECT_EQ(round.client_deltas[0].size(), prototype.NumParameters());
  }
}

TEST(TrainingLogTest, FullCoalitionReconstructionMatchesTraining) {
  // Replaying *all* clients' deltas must reproduce the actual final model:
  // the reconstruction operator is exact for the grand coalition.
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(100, 11));
  FlClient b(1, MakeBlobData(150, 12));
  FlClient c(2, MakeBlobData(80, 13));
  FedAvgConfig config;
  config.rounds = 4;
  TrainingLog log;
  Result<std::unique_ptr<Model>> model =
      TrainFedAvg(prototype, {&a, &b, &c}, config, &log);
  ASSERT_TRUE(model.ok());
  Result<std::vector<float>> reconstructed =
      ReconstructParameters(log, {0, 1, 2});
  ASSERT_TRUE(reconstructed.ok());
  const std::vector<float>& actual = (*model)->GetParameters();
  ASSERT_EQ(reconstructed->size(), actual.size());
  for (size_t p = 0; p < actual.size(); ++p) {
    EXPECT_NEAR((*reconstructed)[p], actual[p], 1e-4f);
  }
}

TEST(TrainingLogTest, EmptySubsetReconstructsInitialParams) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(60, 14));
  FedAvgConfig config;
  TrainingLog log;
  ASSERT_TRUE(TrainFedAvg(prototype, {&a}, config, &log).ok());
  Result<std::vector<float>> reconstructed = ReconstructParameters(log, {});
  ASSERT_TRUE(reconstructed.ok());
  EXPECT_EQ(*reconstructed, log.initial_params);
}

TEST(TrainingLogTest, SubsetReconstructionDiffersFromFull) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(100, 15));
  FlClient b(1, MakeBlobData(100, 16));
  FedAvgConfig config;
  TrainingLog log;
  ASSERT_TRUE(TrainFedAvg(prototype, {&a, &b}, config, &log).ok());
  Result<std::vector<float>> just_a = ReconstructParameters(log, {0});
  Result<std::vector<float>> both = ReconstructParameters(log, {0, 1});
  ASSERT_TRUE(just_a.ok());
  ASSERT_TRUE(both.ok());
  EXPECT_NE(*just_a, *both);
}

TEST(TrainingLogTest, RoundReconstructionBounds) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(60, 17));
  FedAvgConfig config;
  config.rounds = 2;
  TrainingLog log;
  ASSERT_TRUE(TrainFedAvg(prototype, {&a}, config, &log).ok());
  EXPECT_TRUE(ReconstructRoundParameters(log, 0, {0}).ok());
  EXPECT_TRUE(ReconstructRoundParameters(log, 1, {0}).ok());
  EXPECT_FALSE(ReconstructRoundParameters(log, 2, {0}).ok());
  EXPECT_FALSE(ReconstructRoundParameters(log, -1, {0}).ok());
}

TEST(TrainingLogTest, RoundReconstructionWithAbsentSubset) {
  LogisticRegression prototype = MakePrototype();
  FlClient a(0, MakeBlobData(60, 18));
  FedAvgConfig config;
  config.rounds = 1;
  TrainingLog log;
  ASSERT_TRUE(TrainFedAvg(prototype, {&a}, config, &log).ok());
  // Client 5 never participated: round reconstruction falls back to the
  // round's starting parameters.
  Result<std::vector<float>> params = ReconstructRoundParameters(log, 0, {5});
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(*params, log.rounds[0].global_before);
}

TEST(FlClientTest, LocalUpdateTrainsOnLocalData) {
  LogisticRegression prototype = MakePrototype();
  FlClient client(0, MakeBlobData(200, 19));
  LogisticRegression scratch(4, 2);
  SgdConfig config;
  config.epochs = 3;
  config.learning_rate = 0.3;
  Rng rng(20);
  Result<std::vector<float>> updated = client.LocalUpdate(
      prototype.GetParameters(), scratch, config, rng);
  ASSERT_TRUE(updated.ok());
  EXPECT_NE(*updated, prototype.GetParameters());
  // The updated model should fit the local data better.
  LogisticRegression updated_model(4, 2);
  ASSERT_TRUE(updated_model.SetParameters(*updated).ok());
  EXPECT_LT(updated_model.Loss(client.data()), prototype.Loss(client.data()));
}

}  // namespace
}  // namespace fedshap
