#include "core/valuation_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(RelativeL2ErrorTest, ZeroForIdenticalVectors) {
  EXPECT_DOUBLE_EQ(RelativeL2Error({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(RelativeL2ErrorTest, MatchesHandComputation) {
  // ||(0.1, -0.2)|| / ||(1, 2)|| = sqrt(0.05) / sqrt(5) = 0.1.
  EXPECT_NEAR(RelativeL2Error({1, 2}, {1.1, 1.8}), 0.1, 1e-12);
}

TEST(RelativeL2ErrorTest, ZeroExactVectorEdgeCases) {
  EXPECT_DOUBLE_EQ(RelativeL2Error({0, 0}, {0, 0}), 0.0);
  EXPECT_TRUE(std::isinf(RelativeL2Error({0, 0}, {1, 0})));
}

TEST(RelativeL2ErrorTest, ScaleInvarianceOfExact) {
  // Doubling both vectors keeps the relative error.
  const double e1 = RelativeL2Error({1, 2, 3}, {1.5, 2.5, 2.0});
  const double e2 = RelativeL2Error({2, 4, 6}, {3.0, 5.0, 4.0});
  EXPECT_NEAR(e1, e2, 1e-12);
}

TEST(SpearmanTest, PerfectCorrelationForMonotoneTransforms) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3}, {2, 4, 9}), 1.0);
}

TEST(SpearmanTest, PerfectAntiCorrelation) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(SpearmanTest, HandlesTiesWithAverageRanks) {
  const double rho = SpearmanCorrelation({1, 1, 2}, {1, 2, 3});
  EXPECT_GT(rho, 0.5);
  EXPECT_LT(rho, 1.0);
}

TEST(SpearmanTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({5}, {7}), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(KendallTauTest, PerfectAgreementAndReversal) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({1, 2, 3}, {3, 2, 1}), -1.0);
}

TEST(KendallTauTest, HandComputedMixedCase) {
  // Pairs: (1,2)/(2,1) discordant; (1,3)/(2,3) concordant with both others
  // concordant -> (2 - 1) / 3.
  EXPECT_NEAR(KendallTau({1, 2, 3}, {2, 1, 3}), 1.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, TiesCountAsNeither) {
  // One tied pair in `a` out of three pairs: tau-a = 2/3 when the other
  // two pairs are concordant.
  EXPECT_NEAR(KendallTau({1, 1, 2}, {1, 2, 3}), 2.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(KendallTau({5}, {7}), 1.0);
  EXPECT_DOUBLE_EQ(KendallTau({}, {}), 1.0);
}

TEST(KendallTauTest, AgreesWithSpearmanOnCleanRankings) {
  // Both should be 1 / -1 on strictly monotone data and broadly agree in
  // sign elsewhere.
  std::vector<double> a = {0.1, 0.5, 0.3, 0.9, 0.7};
  std::vector<double> b = {1.0, 3.0, 2.0, 5.0, 4.0};  // same order
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanCorrelation(a, b), 1.0);
}

TEST(FairnessProxiesTest, ZeroErrorForIdealValuation) {
  // Nulls at 0, duplicates equal.
  Result<FairnessProxyError> error = ComputeFairnessProxies(
      {0.5, 0.0, 0.25, 0.25}, {1}, {{2, 3}});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(error->free_rider, 0.0);
  EXPECT_DOUBLE_EQ(error->symmetry, 0.0);
  EXPECT_DOUBLE_EQ(error->combined, 0.0);
}

TEST(FairnessProxiesTest, DetectsViolations) {
  // Null player got 0.2 of total |mass| 1.0; duplicates differ by 0.3.
  Result<FairnessProxyError> error = ComputeFairnessProxies(
      {0.2, 0.4, 0.1, 0.3}, {0}, {{2, 3}});
  ASSERT_TRUE(error.ok());
  EXPECT_NEAR(error->free_rider, 0.2, 1e-12);
  EXPECT_NEAR(error->symmetry, 0.2, 1e-12);
  EXPECT_NEAR(error->combined, 0.4, 1e-12);
}

TEST(FairnessProxiesTest, AllZeroValuationHasZeroError) {
  Result<FairnessProxyError> error =
      ComputeFairnessProxies({0, 0, 0}, {0}, {{1, 2}});
  ASSERT_TRUE(error.ok());
  EXPECT_DOUBLE_EQ(error->combined, 0.0);
}

TEST(FairnessProxiesTest, ValidatesIndices) {
  EXPECT_FALSE(ComputeFairnessProxies({1.0}, {5}, {}).ok());
  EXPECT_FALSE(ComputeFairnessProxies({1.0}, {}, {{0, 9}}).ok());
  EXPECT_FALSE(ComputeFairnessProxies({1.0}, {-1}, {}).ok());
}

TEST(EfficiencyResidualTest, ExactForBalancedValues) {
  EXPECT_NEAR(EfficiencyResidual({0.3, 0.56}, 0.96, 0.10), 0.0, 1e-12);
  EXPECT_NEAR(EfficiencyResidual({0.3, 0.5}, 0.96, 0.10), 0.06, 1e-12);
}

}  // namespace
}  // namespace fedshap
