/// Stress and fuzz suites: randomized operation sequences checked against
/// reference implementations, and concurrency hammering on the shared
/// utility cache. These guard the substrate invariants the valuation
/// algorithms silently rely on.

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/logistic_regression.h"
#include "test_util.h"
#include "util/coalition.h"
#include "util/combinatorics.h"
#include "util/thread_pool.h"

namespace fedshap {
namespace {

TEST(CoalitionFuzzTest, MatchesReferenceSetSemantics) {
  // Random Add/Remove/With/Without/Union/Minus sequences must agree with
  // std::set<int> reference semantics.
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    Coalition coalition;
    std::set<int> reference;
    for (int op = 0; op < 200; ++op) {
      const int client = static_cast<int>(rng.UniformInt(40));
      switch (rng.UniformInt(4)) {
        case 0:
          coalition.Add(client);
          reference.insert(client);
          break;
        case 1:
          coalition.Remove(client);
          reference.erase(client);
          break;
        case 2: {
          Coalition other;
          std::set<int> other_ref;
          for (int j = 0; j < 3; ++j) {
            const int c = static_cast<int>(rng.UniformInt(40));
            other.Add(c);
            other_ref.insert(c);
          }
          coalition = coalition.Union(other);
          reference.insert(other_ref.begin(), other_ref.end());
          break;
        }
        case 3: {
          Coalition other;
          std::set<int> other_ref;
          for (int j = 0; j < 2; ++j) {
            const int c = static_cast<int>(rng.UniformInt(40));
            other.Add(c);
            other_ref.insert(c);
          }
          coalition = coalition.Minus(other);
          for (int c : other_ref) reference.erase(c);
          break;
        }
      }
      // Full-state comparison every few ops keeps the test fast.
      if (op % 20 == 0) {
        std::vector<int> expected(reference.begin(), reference.end());
        ASSERT_EQ(coalition.Members(), expected) << "trial " << trial;
        ASSERT_EQ(coalition.Count(), static_cast<int>(reference.size()));
      }
    }
  }
}

TEST(CoalitionFuzzTest, ComplementAndSubsetInvariants) {
  Rng rng(2);
  const int n = 24;
  for (int trial = 0; trial < 300; ++trial) {
    const int k = static_cast<int>(rng.UniformInt(n + 1));
    Coalition s = RandomSubsetOfSize(n, k, rng);
    const Coalition complement = s.ComplementIn(n);
    // S and its complement partition the grand coalition.
    EXPECT_EQ(s.Union(complement), Coalition::Full(n));
    EXPECT_TRUE(s.Intersect(complement).Empty());
    EXPECT_EQ(s.Count() + complement.Count(), n);
    // Subset relations.
    EXPECT_TRUE(s.IsSubsetOf(Coalition::Full(n)));
    EXPECT_EQ(s.IsSubsetOf(complement), s.Empty());
  }
}

TEST(DatasetFuzzTest, SubsetMergeRoundTrip) {
  Rng rng(3);
  Result<Dataset> pool = GenerateBlobs(3, 4, 4.0, 200, rng);
  ASSERT_TRUE(pool.ok());
  for (int trial = 0; trial < 30; ++trial) {
    // Random disjoint split, then merge: multiset of rows preserved.
    std::vector<size_t> order(pool->size());
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(order);
    const size_t cut = rng.UniformInt(pool->size() + 1);
    std::vector<size_t> left_idx(order.begin(), order.begin() + cut);
    std::vector<size_t> right_idx(order.begin() + cut, order.end());
    Dataset left = pool->Subset(left_idx);
    Dataset right = pool->Subset(right_idx);
    Result<Dataset> merged = Dataset::Merge({&left, &right});
    ASSERT_TRUE(merged.ok());
    ASSERT_EQ(merged->size(), pool->size());
    // Compare as multisets of (first feature, target) signatures.
    auto signature = [](const Dataset& d) {
      std::multiset<std::pair<float, float>> sig;
      for (size_t i = 0; i < d.size(); ++i) {
        sig.emplace(d.Value(i, 0), d.Target(i));
      }
      return sig;
    };
    EXPECT_EQ(signature(*merged), signature(*pool));
  }
}

class ConcurrencyStress : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(4);
    Result<Dataset> pool = GenerateBlobs(2, 4, 5.0, 600, rng);
    ASSERT_TRUE(pool.ok());
    auto [train, test] = pool->Split(0.7, rng);
    std::vector<Dataset> clients;
    for (int i = 0; i < 5; ++i) {
      std::vector<size_t> idx;
      for (size_t r = i; r < train.size(); r += 5) idx.push_back(r);
      clients.push_back(train.Subset(idx));
    }
    LogisticRegression prototype(4, 2);
    Rng init(5);
    prototype.InitializeParameters(init);
    FedAvgConfig config;
    config.rounds = 2;
    Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
        std::move(clients), std::move(test), prototype, config);
    ASSERT_TRUE(utility.ok());
    utility_ = std::move(utility).value();
  }
  std::unique_ptr<FedAvgUtility> utility_;
};

TEST_F(ConcurrencyStress, ParallelEvaluationsAgreeWithSequential) {
  // The same coalition evaluated from many threads must yield one value.
  UtilityCache cache(utility_.get());
  ThreadPool pool(4);
  std::vector<Coalition> targets;
  for (uint64_t mask = 0; mask < 32; ++mask) {
    Coalition c;
    for (int i = 0; i < 5; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    targets.push_back(c);
  }
  // Hammer: every coalition requested from 8 concurrent tasks.
  std::atomic<int> failures{0};
  for (int rep = 0; rep < 8; ++rep) {
    for (const Coalition& c : targets) {
      pool.Submit([&cache, &failures, c] {
        if (!cache.Get(c).ok()) failures.fetch_add(1);
      });
    }
  }
  pool.WaitIdle();
  EXPECT_EQ(failures.load(), 0);

  // Values equal a fresh sequential evaluation (determinism).
  UtilityCache fresh(utility_.get());
  for (const Coalition& c : targets) {
    Result<UtilityRecord> cached = cache.Get(c);
    Result<UtilityRecord> direct = fresh.Get(c);
    ASSERT_TRUE(cached.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_DOUBLE_EQ(cached->utility, direct->utility) << c.ToString();
  }
}

TEST_F(ConcurrencyStress, ParallelPrefetchThenExactShapley) {
  // Prefetching all coalitions in parallel then running exact SV must give
  // the same values as a purely sequential run.
  UtilityCache parallel_cache(utility_.get());
  ThreadPool pool(4);
  std::vector<Coalition> all;
  for (uint64_t mask = 0; mask < 32; ++mask) {
    Coalition c;
    for (int i = 0; i < 5; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    all.push_back(c);
  }
  ASSERT_TRUE(parallel_cache.Prefetch(all, &pool).ok());
  UtilitySession parallel_session(&parallel_cache);
  Result<ValuationResult> from_parallel = ExactShapleyMc(parallel_session);
  ASSERT_TRUE(from_parallel.ok());

  UtilityCache sequential_cache(utility_.get());
  UtilitySession sequential_session(&sequential_cache);
  Result<ValuationResult> from_sequential =
      ExactShapleyMc(sequential_session);
  ASSERT_TRUE(from_sequential.ok());
  EXPECT_EQ(from_parallel->values, from_sequential->values);
}

TEST(TableUtilityStress, ManyConcurrentSessions) {
  TableUtility table = testing_util::MonotoneTable(8);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  std::atomic<int> failures{0};
  pool.ParallelFor(64, [&](int i) {
    UtilitySession session(&cache);
    Rng rng(1000 + i);
    for (int draws = 0; draws < 50; ++draws) {
      Coalition c = RandomSubsetOfSize(8, 1 + rng.UniformInt(8), rng);
      if (!session.Evaluate(c).ok()) failures.fetch_add(1);
    }
  });
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE(cache.size(), 256u);
}

}  // namespace
}  // namespace fedshap
