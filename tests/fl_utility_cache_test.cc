#include "fl/utility_cache.h"

#include <atomic>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

/// Counts underlying evaluations to verify memoization.
class CountingUtility : public UtilityFunction {
 public:
  explicit CountingUtility(int n) : n_(n) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<double>(coalition.Count());
  }
  int calls() const { return calls_.load(); }

 private:
  int n_;
  mutable std::atomic<int> calls_{0};
};

/// Always fails; exercises error propagation.
class FailingUtility : public UtilityFunction {
 public:
  int num_clients() const override { return 2; }
  Result<double> Evaluate(const Coalition&) const override {
    return Status::Internal("deliberate failure");
  }
};

TEST(UtilityCacheTest, MemoizesDistinctCoalitions) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  const Coalition a = Coalition::Of({0, 1});
  const Coalition b = Coalition::Of({2});
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(b).ok());
  ASSERT_TRUE(cache.Get(a).ok());
  EXPECT_EQ(fn.calls(), 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(UtilityCacheTest, ValuesComeFromUnderlyingFunction) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  Result<UtilityRecord> record = cache.Get(Coalition::Of({0, 2, 4}));
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(record->utility, 3.0);
  EXPECT_GE(record->cost_seconds, 0.0);
}

TEST(UtilityCacheTest, ErrorsPropagate) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  EXPECT_FALSE(cache.Get(Coalition()).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(UtilityCacheTest, ClearResetsEverything) {
  CountingUtility fn(4);
  UtilityCache cache(&fn);
  ASSERT_TRUE(cache.Get(Coalition::Of({1})).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  ASSERT_TRUE(cache.Get(Coalition::Of({1})).ok());
  EXPECT_EQ(fn.calls(), 2);  // recomputed after Clear
}

TEST(UtilityCacheTest, PrefetchSequential) {
  CountingUtility fn(6);
  UtilityCache cache(&fn);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(6, 2, [&](const Coalition& c) { batch.push_back(c); });
  ASSERT_TRUE(cache.Prefetch(batch).ok());
  EXPECT_EQ(cache.size(), 15u);
  EXPECT_EQ(fn.calls(), 15);
}

TEST(UtilityCacheTest, PrefetchParallelComputesEachOnce) {
  CountingUtility fn(8);
  UtilityCache cache(&fn);
  ThreadPool pool(4);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(8, 3, [&](const Coalition& c) { batch.push_back(c); });
  ASSERT_TRUE(cache.Prefetch(batch, &pool).ok());
  EXPECT_EQ(cache.size(), 56u);
  // Racing duplicates are possible but bounded; all results are consistent.
  EXPECT_GE(fn.calls(), 56);
  for (const Coalition& c : batch) {
    Result<UtilityRecord> record = cache.Get(c);
    ASSERT_TRUE(record.ok());
    EXPECT_DOUBLE_EQ(record->utility, 3.0);
  }
}

TEST(UtilityCacheTest, PrefetchPropagatesFailure) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  ThreadPool pool(2);
  EXPECT_FALSE(cache.Prefetch({Coalition()}, &pool).ok());
}

TEST(UtilitySessionTest, CountsEvaluationsAndDistinct) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  EXPECT_EQ(session.num_clients(), 5);
  ASSERT_TRUE(session.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(session.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(session.Evaluate(Coalition::Of({1})).ok());
  EXPECT_EQ(session.num_evaluations(), 3u);
  EXPECT_EQ(session.num_distinct(), 2u);
}

TEST(UtilitySessionTest, ChargesEachDistinctCoalitionOnce) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession warmup(&cache);
  ASSERT_TRUE(warmup.Evaluate(Coalition::Of({0, 1})).ok());
  const double warm_cost = warmup.charged_seconds();
  EXPECT_GE(warm_cost, 0.0);

  // A later session re-asking for the cached coalition is still charged
  // the recorded cost — the honest-time model.
  UtilitySession later(&cache);
  ASSERT_TRUE(later.Evaluate(Coalition::Of({0, 1})).ok());
  ASSERT_TRUE(later.Evaluate(Coalition::Of({0, 1})).ok());
  EXPECT_DOUBLE_EQ(later.charged_seconds(), warm_cost);
  EXPECT_EQ(later.num_distinct(), 1u);
  EXPECT_EQ(fn.calls(), 1);  // no recomputation happened
}

TEST(UtilitySessionTest, IndependentSessionsShareCache) {
  CountingUtility fn(4);
  UtilityCache cache(&fn);
  UtilitySession a(&cache), b(&cache);
  ASSERT_TRUE(a.Evaluate(Coalition::Of({2})).ok());
  ASSERT_TRUE(b.Evaluate(Coalition::Of({2})).ok());
  EXPECT_EQ(fn.calls(), 1);
  EXPECT_EQ(a.num_distinct(), 1u);
  EXPECT_EQ(b.num_distinct(), 1u);
}

TEST(UtilitySessionTest, PaperTableOneRoundTrip) {
  TableUtility table = testing_util::PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<double> u = session.Evaluate(Coalition::Of({0, 1, 2}));
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 0.96);
}

}  // namespace
}  // namespace fedshap
