#include "fl/utility_cache.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include <gtest/gtest.h>

#include "fl/utility_store.h"
#include "test_util.h"
#include "util/combinatorics.h"
#include "util/random.h"

namespace fedshap {
namespace {

/// Counts underlying evaluations to verify memoization.
class CountingUtility : public UtilityFunction {
 public:
  explicit CountingUtility(int n) : n_(n) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<double>(coalition.Count());
  }
  int calls() const { return calls_.load(); }

 private:
  int n_;
  mutable std::atomic<int> calls_{0};
};

/// Always fails; exercises error propagation.
class FailingUtility : public UtilityFunction {
 public:
  int num_clients() const override { return 2; }
  Result<double> Evaluate(const Coalition&) const override {
    return Status::Internal("deliberate failure");
  }
};

TEST(UtilityCacheTest, MemoizesDistinctCoalitions) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  const Coalition a = Coalition::Of({0, 1});
  const Coalition b = Coalition::Of({2});
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(b).ok());
  ASSERT_TRUE(cache.Get(a).ok());
  EXPECT_EQ(fn.calls(), 2);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(UtilityCacheTest, ValuesComeFromUnderlyingFunction) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  Result<UtilityRecord> record = cache.Get(Coalition::Of({0, 2, 4}));
  ASSERT_TRUE(record.ok());
  EXPECT_DOUBLE_EQ(record->utility, 3.0);
  EXPECT_GE(record->cost_seconds, 0.0);
}

TEST(UtilityCacheTest, ErrorsPropagate) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  EXPECT_FALSE(cache.Get(Coalition()).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(UtilityCacheTest, ClearResetsEverything) {
  CountingUtility fn(4);
  UtilityCache cache(&fn);
  ASSERT_TRUE(cache.Get(Coalition::Of({1})).ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  ASSERT_TRUE(cache.Get(Coalition::Of({1})).ok());
  EXPECT_EQ(fn.calls(), 2);  // recomputed after Clear
}

TEST(UtilityCacheTest, GetReportsWhoComputed) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  bool fresh = false;
  ASSERT_TRUE(cache.Get(Coalition::Of({0, 1}), &fresh).ok());
  EXPECT_TRUE(fresh);  // First asker trains.
  ASSERT_TRUE(cache.Get(Coalition::Of({0, 1}), &fresh).ok());
  EXPECT_FALSE(fresh);  // Hit.
}

TEST(UtilityCacheTest, SessionAttributesFreshTrainings) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession first(&cache);
  ASSERT_TRUE(first.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(first.Evaluate(Coalition::Of({0, 1})).ok());
  ASSERT_TRUE(first.Evaluate(Coalition::Of({0})).ok());  // Repeat.
  EXPECT_EQ(first.num_distinct(), 2u);
  EXPECT_EQ(first.num_fresh_trainings(), 2u);

  // A second session over the same cache needs both coalitions but
  // trains only the one the first session did not cover.
  UtilitySession second(&cache);
  ASSERT_TRUE(second.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(second.Evaluate(Coalition::Of({2})).ok());
  EXPECT_EQ(second.num_distinct(), 2u);
  EXPECT_EQ(second.num_fresh_trainings(), 1u);
  EXPECT_EQ(fn.calls(), 3);
}

TEST(UtilityCacheTest, BatchFreshAccountingMatchesSequential) {
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(7, 2, [&](const Coalition& c) { batch.push_back(c); });

  CountingUtility sequential_fn(7);
  UtilityCache sequential_cache(&sequential_fn);
  UtilitySession sequential(&sequential_cache);
  for (const Coalition& c : batch) {
    ASSERT_TRUE(sequential.Evaluate(c).ok());
  }

  CountingUtility parallel_fn(7);
  UtilityCache parallel_cache(&parallel_fn);
  ThreadPool pool(4);
  UtilitySession parallel(&parallel_cache, &pool);
  ASSERT_TRUE(parallel.EvaluateBatch(batch).ok());

  // The pool prefetch computes the misses, but they are still this
  // session's own trainings — identical accounting to sequential.
  EXPECT_EQ(parallel.num_fresh_trainings(),
            sequential.num_fresh_trainings());
  EXPECT_EQ(parallel.num_fresh_trainings(), batch.size());
  EXPECT_EQ(parallel.num_distinct(), sequential.num_distinct());
}

TEST(UtilityCacheTest, PrefetchSequential) {
  CountingUtility fn(6);
  UtilityCache cache(&fn);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(6, 2, [&](const Coalition& c) { batch.push_back(c); });
  ASSERT_TRUE(cache.Prefetch(batch).ok());
  EXPECT_EQ(cache.size(), 15u);
  EXPECT_EQ(fn.calls(), 15);
}

TEST(UtilityCacheTest, PrefetchParallelComputesEachOnce) {
  CountingUtility fn(8);
  UtilityCache cache(&fn);
  ThreadPool pool(4);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(8, 3, [&](const Coalition& c) { batch.push_back(c); });
  ASSERT_TRUE(cache.Prefetch(batch, &pool).ok());
  EXPECT_EQ(cache.size(), 56u);
  // Single-flight: racing workers wait for the in-flight computation
  // instead of duplicating it.
  EXPECT_EQ(fn.calls(), 56);
  EXPECT_EQ(cache.misses(), 56u);
  for (const Coalition& c : batch) {
    Result<UtilityRecord> record = cache.Get(c);
    ASSERT_TRUE(record.ok());
    EXPECT_DOUBLE_EQ(record->utility, 3.0);
  }
}

/// Coalition.Count() plus a deliberate stall, to force Get/Prefetch races
/// to overlap in time.
class SlowCountingUtility : public UtilityFunction {
 public:
  explicit SlowCountingUtility(int n) : n_(n) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    return static_cast<double>(coalition.Count()) * 1.5;
  }
  int calls() const { return calls_.load(); }

 private:
  int n_;
  mutable std::atomic<int> calls_{0};
};

TEST(UtilityCacheTest, ConcurrentHammerComputesEachCoalitionExactlyOnce) {
  // The reference: one sequential sweep over the distinct coalitions.
  std::vector<Coalition> distinct;
  ForEachSubsetOfSize(10, 2, [&](const Coalition& c) {
    distinct.push_back(c);
  });
  SlowCountingUtility sequential_fn(10);
  UtilityCache sequential_cache(&sequential_fn);
  std::vector<double> expected;
  for (const Coalition& c : distinct) {
    Result<UtilityRecord> r = sequential_cache.Get(c);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->utility);
  }

  // The hammer: 8 threads each Get/Prefetch every coalition in a
  // different order, racing on a shared cache.
  SlowCountingUtility fn(10);
  UtilityCache cache(&fn);
  ThreadPool prefetch_pool(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      std::vector<Coalition> order = distinct;
      Rng rng(1000 + t);
      for (size_t j = order.size(); j > 1; --j) {
        std::swap(order[j - 1], order[rng.UniformInt(j)]);
      }
      if (t % 2 == 0) {
        ASSERT_TRUE(cache.Prefetch(order, &prefetch_pool).ok());
      } else {
        for (const Coalition& c : order) {
          ASSERT_TRUE(cache.Get(c).ok());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly-once: every distinct coalition trained once, despite 8x
  // oversubscription, and every value matches the sequential run.
  EXPECT_EQ(cache.misses(), distinct.size());
  EXPECT_EQ(fn.calls(), static_cast<int>(distinct.size()));
  EXPECT_EQ(cache.size(), distinct.size());
  for (size_t j = 0; j < distinct.size(); ++j) {
    Result<UtilityRecord> r = cache.Get(distinct[j]);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r->utility, expected[j]);
  }
}

TEST(UtilityCacheTest, PrefetchPropagatesFailure) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  ThreadPool pool(2);
  EXPECT_FALSE(cache.Prefetch({Coalition()}, &pool).ok());
}

// Regression: the parallel Prefetch path used to collapse any worker
// failure into a generic "prefetch failed" status, losing the underlying
// cause. It must now surface the first failing coalition's real Status,
// exactly as a sequential pass would.
TEST(UtilityCacheTest, PrefetchSurfacesUnderlyingError) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  ThreadPool pool(4);
  std::vector<Coalition> batch = {Coalition(), Coalition::Of({0}),
                                  Coalition::Of({1}), Coalition::Of({0, 1})};
  Status parallel_status = cache.Prefetch(batch, &pool);
  ASSERT_FALSE(parallel_status.ok());
  EXPECT_EQ(parallel_status.code(), StatusCode::kInternal);
  EXPECT_NE(parallel_status.ToString().find("deliberate failure"),
            std::string::npos)
      << parallel_status.ToString();
}

// Regression: Clear() used to leave the store write-through's
// unflushed-byte counter at its pre-Clear value, so the first appends of
// the next run flushed on a stale schedule.
TEST(UtilityCacheTest, ClearResetsUnflushedByteAccounting) {
  const std::string path =
      ::testing::TempDir() + "fedshap_cache_clear_unflushed";
  std::filesystem::remove_all(path);
  CountingUtility fn(5);
  Result<std::unique_ptr<UtilityStore>> store = UtilityStore::Open(path, 42);
  ASSERT_TRUE(store.ok());
  UtilityCache cache(&fn);
  // A flush interval far above one record: appends accumulate unflushed.
  cache.AttachStore(store->get(), /*flush_bytes=*/1 << 20);
  ASSERT_TRUE(cache.Get(Coalition::Of({0, 1})).ok());
  const size_t per_record = cache.unflushed_bytes();
  ASSERT_GT(per_record, 0u);

  cache.Clear();
  EXPECT_EQ(cache.unflushed_bytes(), 0u);

  // The counter restarts from zero: one fresh append of a same-shape
  // coalition leaves exactly one record's bytes pending, not
  // one-plus-the-stale-balance.
  ASSERT_TRUE(cache.Get(Coalition::Of({2, 3})).ok());
  EXPECT_EQ(cache.unflushed_bytes(), per_record);
  std::filesystem::remove_all(path);
}

TEST(UtilityCacheTest, PrefetchFusedComputesEachOnceAndMarksFresh) {
  CountingUtility fn(6);
  UtilityCache cache(&fn);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(6, 2, [&](const Coalition& c) { batch.push_back(c); });
  std::vector<uint8_t> fresh;
  ASSERT_TRUE(cache.PrefetchFused(batch, &fresh).ok());
  ASSERT_EQ(fresh.size(), batch.size());
  for (size_t i = 0; i < fresh.size(); ++i) EXPECT_EQ(fresh[i], 1) << i;
  EXPECT_EQ(cache.misses(), batch.size());
  EXPECT_EQ(fn.calls(), static_cast<int>(batch.size()));
  for (const Coalition& c : batch) {
    Result<UtilityRecord> record = cache.Get(c);
    ASSERT_TRUE(record.ok());
    EXPECT_DOUBLE_EQ(record->utility, 2.0);
  }
  // A second fused pass is all hits: nothing retrained, nothing fresh.
  ASSERT_TRUE(cache.PrefetchFused(batch, &fresh).ok());
  for (size_t i = 0; i < fresh.size(); ++i) EXPECT_EQ(fresh[i], 0) << i;
  EXPECT_EQ(fn.calls(), static_cast<int>(batch.size()));
}

TEST(UtilitySessionTest, CountsEvaluationsAndDistinct) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  EXPECT_EQ(session.num_clients(), 5);
  ASSERT_TRUE(session.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(session.Evaluate(Coalition::Of({0})).ok());
  ASSERT_TRUE(session.Evaluate(Coalition::Of({1})).ok());
  EXPECT_EQ(session.num_evaluations(), 3u);
  EXPECT_EQ(session.num_distinct(), 2u);
}

TEST(UtilitySessionTest, ChargesEachDistinctCoalitionOnce) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession warmup(&cache);
  ASSERT_TRUE(warmup.Evaluate(Coalition::Of({0, 1})).ok());
  const double warm_cost = warmup.charged_seconds();
  EXPECT_GE(warm_cost, 0.0);

  // A later session re-asking for the cached coalition is still charged
  // the recorded cost — the honest-time model.
  UtilitySession later(&cache);
  ASSERT_TRUE(later.Evaluate(Coalition::Of({0, 1})).ok());
  ASSERT_TRUE(later.Evaluate(Coalition::Of({0, 1})).ok());
  EXPECT_DOUBLE_EQ(later.charged_seconds(), warm_cost);
  EXPECT_EQ(later.num_distinct(), 1u);
  EXPECT_EQ(fn.calls(), 1);  // no recomputation happened
}

TEST(UtilitySessionTest, IndependentSessionsShareCache) {
  CountingUtility fn(4);
  UtilityCache cache(&fn);
  UtilitySession a(&cache), b(&cache);
  ASSERT_TRUE(a.Evaluate(Coalition::Of({2})).ok());
  ASSERT_TRUE(b.Evaluate(Coalition::Of({2})).ok());
  EXPECT_EQ(fn.calls(), 1);
  EXPECT_EQ(a.num_distinct(), 1u);
  EXPECT_EQ(b.num_distinct(), 1u);
}

TEST(UtilitySessionTest, EvaluateBatchMatchesSequentialAccounting) {
  SlowCountingUtility fn(9);
  UtilityCache cache(&fn);
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(9, 2, [&](const Coalition& c) { batch.push_back(c); });
  batch.push_back(batch.front());  // a repeat, to exercise hit accounting

  // Sequential reference session.
  UtilitySession sequential(&cache);
  std::vector<double> expected;
  for (const Coalition& c : batch) {
    Result<double> u = sequential.Evaluate(c);
    ASSERT_TRUE(u.ok());
    expected.push_back(*u);
  }

  // Pooled batch session on the same cache: identical values, identical
  // per-run accounting (charged costs come from the same records).
  ThreadPool pool(4);
  UtilitySession parallel(&cache, &pool);
  Result<std::vector<double>> values = parallel.EvaluateBatch(batch);
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, expected);
  EXPECT_EQ(parallel.num_evaluations(), sequential.num_evaluations());
  EXPECT_EQ(parallel.num_distinct(), sequential.num_distinct());
  EXPECT_DOUBLE_EQ(parallel.charged_seconds(),
                   sequential.charged_seconds());
}

TEST(UtilitySessionTest, EvaluateBatchWithoutPoolStillWorks) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  Result<std::vector<double>> values =
      session.EvaluateBatch({Coalition::Of({0}), Coalition::Of({0, 1})});
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(*values, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(session.num_evaluations(), 2u);
}

TEST(UtilitySessionTest, EvaluateBatchPropagatesFailure) {
  FailingUtility fn;
  UtilityCache cache(&fn);
  ThreadPool pool(2);
  UtilitySession session(&cache, &pool);
  EXPECT_FALSE(session.EvaluateBatch({Coalition(), Coalition::Of({0})}).ok());
  EXPECT_EQ(session.num_evaluations(), 0u);
}

TEST(UtilitySessionTest, PrefetchCreditBeforeEvaluateCountsOnce) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  const Coalition c = Coalition::Of({0, 1});

  // The prefetcher trains c ahead of demand and posts the credit.
  bool fresh = false;
  ASSERT_TRUE(cache.Get(c, &fresh).ok());
  ASSERT_TRUE(fresh);
  session.CreditPrefetchedTraining(c);
  EXPECT_EQ(session.prefetch_credited(), 1u);
  EXPECT_EQ(session.prefetch_consumed(), 0u);
  EXPECT_EQ(session.num_fresh_trainings(), 0u);  // not evaluated yet

  // The session's own evaluation is a cache hit, but the training was
  // run on its behalf: it counts as this run's fresh training, once.
  ASSERT_TRUE(session.Evaluate(c).ok());
  ASSERT_TRUE(session.Evaluate(c).ok());  // repeat must not double count
  EXPECT_EQ(session.num_fresh_trainings(), 1u);
  EXPECT_EQ(session.num_distinct(), 1u);
  EXPECT_EQ(session.prefetch_consumed(), 1u);
  EXPECT_EQ(fn.calls(), 1);
}

TEST(UtilitySessionTest, PrefetchCreditAfterEvaluateCountsOnce) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  const Coalition c = Coalition::Of({2});

  // The prefetcher's Get won the training race, but its credit arrives
  // only after the session already evaluated the coalition (as a hit).
  bool fresh = false;
  ASSERT_TRUE(cache.Get(c, &fresh).ok());
  ASSERT_TRUE(fresh);
  ASSERT_TRUE(session.Evaluate(c).ok());
  EXPECT_EQ(session.num_fresh_trainings(), 0u);  // credit not posted yet
  session.CreditPrefetchedTraining(c);
  EXPECT_EQ(session.num_fresh_trainings(), 1u);  // attributed on arrival
  EXPECT_EQ(session.prefetch_consumed(), 1u);
}

TEST(UtilitySessionTest, MisSpeculatedPrefetchCreditIsNotCounted) {
  CountingUtility fn(5);
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  // The prefetcher trained a coalition the run never asks for: credited
  // but never consumed, and num_fresh_trainings stays <= num_distinct.
  bool fresh = false;
  ASSERT_TRUE(cache.Get(Coalition::Of({4}), &fresh).ok());
  session.CreditPrefetchedTraining(Coalition::Of({4}));
  ASSERT_TRUE(session.Evaluate(Coalition::Of({0})).ok());
  EXPECT_EQ(session.prefetch_credited(), 1u);
  EXPECT_EQ(session.prefetch_consumed(), 0u);
  EXPECT_EQ(session.num_distinct(), 1u);
  EXPECT_EQ(session.num_fresh_trainings(), 1u);  // only the real one
}

// The exactness invariant under a live race: a prefetcher Get/credit
// thread overlapping the session's own EvaluateBatch of the same
// coalitions. Whoever wins each single-flight training, every distinct
// coalition must end up attributed to the session exactly once.
TEST(UtilitySessionTest, ConcurrentPrefetchAndEvaluateStayExact) {
  std::vector<Coalition> distinct;
  ForEachSubsetOfSize(9, 2, [&](const Coalition& c) {
    distinct.push_back(c);
  });
  SlowCountingUtility fn(9);
  UtilityCache cache(&fn);
  ThreadPool pool(4);
  UtilitySession session(&cache, &pool);

  std::thread prefetcher([&] {
    for (const Coalition& c : distinct) {
      bool fresh = false;
      ASSERT_TRUE(cache.Get(c, &fresh).ok());
      if (fresh) session.CreditPrefetchedTraining(c);
    }
  });
  Result<std::vector<double>> values = session.EvaluateBatch(distinct);
  prefetcher.join();
  ASSERT_TRUE(values.ok());

  // Only this session (and its prefetcher) use the cache, so every
  // training belongs to it: fresh == distinct == cache misses, despite
  // the race deciding who computed each one.
  EXPECT_EQ(cache.misses(), distinct.size());
  EXPECT_EQ(session.num_distinct(), distinct.size());
  EXPECT_EQ(session.num_fresh_trainings(), distinct.size());
  EXPECT_EQ(session.prefetch_consumed(), session.prefetch_credited());
  for (size_t i = 0; i < distinct.size(); ++i) {
    EXPECT_DOUBLE_EQ((*values)[i],
                     static_cast<double>(distinct[i].Count()) * 1.5);
  }
}

TEST(UtilitySessionTest, FusedBatchMatchesUnfusedValuesAndAccounting) {
  std::vector<Coalition> batch;
  ForEachSubsetOfSize(8, 2, [&](const Coalition& c) { batch.push_back(c); });
  batch.push_back(batch.front());  // repeat exercises hit accounting

  CountingUtility unfused_fn(8);
  UtilityCache unfused_cache(&unfused_fn);
  UtilitySession unfused(&unfused_cache);
  Result<std::vector<double>> expected = unfused.EvaluateBatch(batch);
  ASSERT_TRUE(expected.ok());

  CountingUtility fused_fn(8);
  UtilityCache fused_cache(&fused_fn);
  UtilitySession fused(&fused_cache);
  fused.set_fused(true);
  ASSERT_TRUE(fused.fused());
  Result<std::vector<double>> values = fused.EvaluateBatch(batch);
  ASSERT_TRUE(values.ok());

  // The base fused dispatch routes through the same Evaluate, so values
  // are identical here; accounting must match the unfused path exactly.
  EXPECT_EQ(*values, *expected);
  EXPECT_EQ(fused.num_evaluations(), unfused.num_evaluations());
  EXPECT_EQ(fused.num_distinct(), unfused.num_distinct());
  EXPECT_EQ(fused.num_fresh_trainings(), unfused.num_fresh_trainings());
  EXPECT_EQ(fused_fn.calls(), unfused_fn.calls());
}

TEST(UtilitySessionTest, PaperTableOneRoundTrip) {
  TableUtility table = testing_util::PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<double> u = session.Evaluate(Coalition::Of({0, 1, 2}));
  ASSERT_TRUE(u.ok());
  EXPECT_DOUBLE_EQ(*u, 0.96);
}

}  // namespace
}  // namespace fedshap
