#include "core/stratified.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/valuation_metrics.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

TEST(StratumAllocationTest, SplitsBudgetRoundRobin) {
  std::vector<int> alloc = DefaultStratumAllocation(4, 8);
  ASSERT_EQ(alloc.size(), 4u);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), 8);
  // Every stratum gets at least one sample with budget >= n.
  for (int m : alloc) EXPECT_GE(m, 1);
}

TEST(StratumAllocationTest, ClipsAtStratumPopulation) {
  // n=3: strata have C(3,1)=3, C(3,2)=3, C(3,3)=1 sets -> max total 7.
  std::vector<int> alloc = DefaultStratumAllocation(3, 100);
  EXPECT_EQ(alloc[0], 3);
  EXPECT_EQ(alloc[1], 3);
  EXPECT_EQ(alloc[2], 1);
}

TEST(StratumAllocationTest, ZeroBudget) {
  std::vector<int> alloc = DefaultStratumAllocation(5, 0);
  for (int m : alloc) EXPECT_EQ(m, 0);
}

TEST(StratifiedSamplingTest, FullSamplingReproducesExactMcSv) {
  // When every stratum is exhaustively sampled, the framework touches every
  // pair and the estimate collapses to the exact MC-SV.
  const int n = 5;
  TableUtility table = RandomTable(n, 11);
  UtilityCache cache(&table);

  StratifiedConfig config;
  config.scheme = SvScheme::kMarginal;
  config.rounds_per_stratum.clear();
  for (int k = 1; k <= n; ++k) {
    // Oversample so duplicates cannot leave a set unsampled... sampling is
    // with replacement, so instead sample each stratum's population many
    // times over.
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n, k)) * 30);
  }
  config.seed = 3;
  UtilitySession session(&cache);
  Result<ValuationResult> stratified =
      StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(stratified.ok());

  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());
  // With-replacement sampling at 30x population misses a given set with
  // probability < 1e-13 per stratum; treat as deterministic.
  EXPECT_LT(testing_util::MaxAbsDiff(stratified->values, exact->values),
            1e-9);
}

TEST(StratifiedSamplingTest, ApproximatelyUnbiasedOverManyRuns) {
  // Average the estimator over many independent runs: it should approach
  // the exact value. Theorem 1's unbiasedness is for the estimator that
  // always evaluates the paired combination, i.e. kEvaluateOnDemand.
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const int runs = 800;
  std::vector<double> mean(n, 0.0);
  for (int run = 0; run < runs; ++run) {
    StratifiedConfig config;
    config.scheme = SvScheme::kMarginal;
    config.pair_policy = PairPolicy::kEvaluateOnDemand;
    // Enough draws that every client almost surely appears in every
    // stratum (the regime Theorem 1 analyzes: m_{i,k} > 0), while stratum
    // 2 usually remains partially covered.
    config.rounds_per_stratum = {16, 8, 8, 1};
    config.seed = 1000 + run;
    UtilitySession session(&cache);
    Result<ValuationResult> result =
        StratifiedSamplingShapley(session, config);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < n; ++i) mean[i] += result->values[i];
  }
  for (int i = 0; i < n; ++i) mean[i] /= runs;
  // Loose tolerance: Monte Carlo average of 800 runs.
  EXPECT_LT(testing_util::MaxAbsDiff(mean, exact->values), 0.03);
}

TEST(StratifiedSamplingTest, BudgetIsRespected) {
  const int n = 6;
  TableUtility table = RandomTable(n, 13);
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.total_rounds = 10;
  config.seed = 5;
  UtilitySession session(&cache);
  Result<ValuationResult> result = StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(result.ok());
  // gamma sampled sets + the always-available empty set.
  EXPECT_LE(result->num_trainings, 10u + 1u);
}

TEST(StratifiedSamplingTest, CcSchemeAlsoFindsValuesWithFullSampling) {
  const int n = 4;
  TableUtility table = RandomTable(n, 17);
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.scheme = SvScheme::kComplementary;
  config.rounds_per_stratum.clear();
  for (int k = 1; k <= n; ++k) {
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n, k)) * 30);
  }
  UtilitySession session(&cache);
  Result<ValuationResult> cc = StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(cc.ok());
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyCc(exact_session);
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(cc->values, exact->values), 1e-9);
}

TEST(StratifiedSamplingTest, McHasLowerVarianceThanCcOnLinearRegression) {
  // Thm. 2: with the same sampling strategy, MC-SV yields lower variance
  // than CC-SV under the FL linear-regression noise model.
  LinearRegressionUtility::Params params;
  params.num_clients = 6;
  params.samples_per_client = 30;
  params.feature_dim = 3;
  params.noise_scale = 0.002;
  LinearRegressionUtility utility(params);

  const int runs = 150;
  const int n = params.num_clients;
  std::vector<std::vector<double>> mc_samples, cc_samples;
  for (int run = 0; run < runs; ++run) {
    utility.Reseed(7000 + run);  // fresh noise realization per run
    UtilityCache cache(&utility);  // fresh cache: utilities changed
    StratifiedConfig config;
    // Coverage-guaranteeing allocation: every client appears in every
    // stratum with near-certainty, so the run-to-run variance reflects
    // the utility noise (Thm. 2's setting) rather than Bernoulli
    // presence/absence of whole strata.
    config.rounds_per_stratum = {120, 30, 24, 24, 30, 1};
    config.pair_policy = PairPolicy::kEvaluateOnDemand;
    config.seed = 40 + run;
    config.scheme = SvScheme::kMarginal;
    UtilitySession mc_session(&cache);
    Result<ValuationResult> mc =
        StratifiedSamplingShapley(mc_session, config);
    ASSERT_TRUE(mc.ok());
    config.scheme = SvScheme::kComplementary;
    UtilitySession cc_session(&cache);
    Result<ValuationResult> cc =
        StratifiedSamplingShapley(cc_session, config);
    ASSERT_TRUE(cc.ok());
    mc_samples.push_back(mc->values);
    cc_samples.push_back(cc->values);
  }
  auto total_variance = [&](const std::vector<std::vector<double>>& runs_v) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double mean = 0.0;
      for (const auto& v : runs_v) mean += v[i];
      mean /= runs_v.size();
      double var = 0.0;
      for (const auto& v : runs_v) var += (v[i] - mean) * (v[i] - mean);
      total += var / runs_v.size();
    }
    return total;
  };
  EXPECT_LT(total_variance(mc_samples), total_variance(cc_samples));
}

TEST(StratifiedSamplingTest, PaperExampleSchemesDisagreeUnderSampling) {
  // Under partial sampling the two schemes give different estimates (as in
  // the paper's Example 2: 0.2588 vs 0.22) though both target the same SV.
  TableUtility table = PaperTableOne();
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.total_rounds = 4;
  config.seed = 9;
  config.scheme = SvScheme::kMarginal;
  UtilitySession mc_session(&cache);
  Result<ValuationResult> mc = StratifiedSamplingShapley(mc_session, config);
  ASSERT_TRUE(mc.ok());
  config.scheme = SvScheme::kComplementary;
  UtilitySession cc_session(&cache);
  Result<ValuationResult> cc = StratifiedSamplingShapley(cc_session, config);
  ASSERT_TRUE(cc.ok());
  // Estimates exist and are finite for every client under both schemes.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(mc->values[i]));
    EXPECT_TRUE(std::isfinite(cc->values[i]));
  }
}

TEST(StratifiedSamplingTest, ConfigValidation) {
  TableUtility table = RandomTable(3, 19);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  StratifiedConfig config;
  config.rounds_per_stratum = {1, 2};  // wrong length for n=3
  EXPECT_FALSE(StratifiedSamplingShapley(session, config).ok());
}

TEST(PerClientStratifiedTest, UnbiasedOverManyRuns) {
  // The per-client estimator covers every stratum for every client, so it
  // is unbiased without any coverage caveat (Thm. 1's setting).
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const int runs = 600;
  std::vector<double> mean(n, 0.0);
  for (int run = 0; run < runs; ++run) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 1;
    config.seed = 5000 + run;
    UtilitySession session(&cache);
    Result<ValuationResult> result =
        PerClientStratifiedShapley(session, config);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < n; ++i) mean[i] += result->values[i];
  }
  for (int i = 0; i < n; ++i) mean[i] /= runs;
  EXPECT_LT(testing_util::MaxAbsDiff(mean, exact->values), 0.02);
}

TEST(PerClientStratifiedTest, McVarianceBelowCcOnFlShapedUtility) {
  // Thm. 2 / Fig. 10 in the per-client estimator: complementary
  // contributions disperse more than marginal contributions, so CC-SV has
  // the higher run-to-run variance at matched budgets.
  const int n = 6;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  const int runs = 200;
  std::vector<std::vector<double>> mc_samples, cc_samples;
  for (int run = 0; run < runs; ++run) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 2;
    config.seed = 9000 + run;
    config.scheme = SvScheme::kMarginal;
    UtilitySession mc_session(&cache);
    Result<ValuationResult> mc =
        PerClientStratifiedShapley(mc_session, config);
    ASSERT_TRUE(mc.ok());
    mc_samples.push_back(mc->values);
    config.scheme = SvScheme::kComplementary;
    UtilitySession cc_session(&cache);
    Result<ValuationResult> cc =
        PerClientStratifiedShapley(cc_session, config);
    ASSERT_TRUE(cc.ok());
    cc_samples.push_back(cc->values);
  }
  auto total_variance = [&](const std::vector<std::vector<double>>& v) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double mean = 0.0;
      for (const auto& run : v) mean += run[i];
      mean /= v.size();
      double var = 0.0;
      for (const auto& run : v) var += (run[i] - mean) * (run[i] - mean);
      total += var / v.size();
    }
    return total;
  };
  EXPECT_LT(total_variance(mc_samples), total_variance(cc_samples));
}

TEST(PerClientStratifiedTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(5, 3);
  UtilityCache cache(&table);
  PerClientStratifiedConfig config;
  config.samples_per_stratum = 2;
  config.seed = 11;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = PerClientStratifiedShapley(s1, config);
  Result<ValuationResult> r2 = PerClientStratifiedShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(PerClientStratifiedTest, Validation) {
  TableUtility table = RandomTable(3, 5);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  PerClientStratifiedConfig config;
  config.samples_per_stratum = 0;
  EXPECT_FALSE(PerClientStratifiedShapley(session, config).ok());
}

TEST(SmallestFirstAllocationTest, CoversTinyStrataFirst) {
  // n=6: populations 6,15,20,15,6,1. The grand coalition (population 1)
  // and the singleton stratum are budgeted before the big middle strata.
  std::vector<int> alloc = SmallestFirstAllocation(6, 40);
  ASSERT_EQ(alloc.size(), 6u);
  EXPECT_GT(alloc[5], 0);  // stratum 6 (grand coalition) first
  EXPECT_GT(alloc[0], 0);  // singletons next
  EXPECT_EQ(alloc[2], 0);  // population-20 stratum starved at this budget
}

TEST(SmallestFirstAllocationTest, SpendsWholeBudget) {
  for (int budget : {0, 10, 100, 5000}) {
    std::vector<int> alloc = SmallestFirstAllocation(5, budget);
    EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), budget);
  }
}

TEST(SvSchemeNameTest, Names) {
  EXPECT_STREQ(SvSchemeName(SvScheme::kMarginal), "MC-SV");
  EXPECT_STREQ(SvSchemeName(SvScheme::kComplementary), "CC-SV");
}

TEST(StratifiedSamplingTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(9, 13);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  for (SvScheme scheme : {SvScheme::kMarginal, SvScheme::kComplementary}) {
    StratifiedConfig config;
    config.total_rounds = 50;
    config.seed = 5;
    config.scheme = scheme;
    UtilitySession sequential(&cache);
    Result<ValuationResult> reference =
        StratifiedSamplingShapley(sequential, config);
    ASSERT_TRUE(reference.ok());
    UtilitySession batched(&cache, &pool);
    Result<ValuationResult> parallel =
        StratifiedSamplingShapley(batched, config);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->values, reference->values)
        << SvSchemeName(scheme);
    EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
    EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
  }
}

// ---------------------------------------------------------------------------
// Adaptive allocation: running moments, Neyman split, bucket refinement.

// Fills one stratum's moments with a deterministic observation set whose
// sample stddev is roughly `sigma` (two points at mean +- sigma).
StratumMoments MomentsWithSigma(double sigma, double mean = 0.0,
                                int pairs = 2) {
  StratumMoments m;
  for (int p = 0; p < pairs; ++p) {
    m.Add(mean - sigma);
    m.Add(mean + sigma);
  }
  return m;
}

TEST(StratumMomentsTest, RunningMomentsMatchDirectFormulas) {
  const std::vector<double> xs = {0.3, -1.2, 2.5, 0.0, 0.7};
  StratumMoments m;
  for (double x : xs) m.Add(x);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size() - 1;
  EXPECT_EQ(m.count, xs.size());
  EXPECT_NEAR(m.Mean(), mean, 1e-12);
  EXPECT_NEAR(m.Variance(), var, 1e-12);
  EXPECT_NEAR(m.StdDev(), std::sqrt(var), 1e-12);
}

TEST(StratumMomentsTest, DegenerateCountsAndMerge) {
  StratumMoments empty;
  EXPECT_EQ(empty.Mean(), 0.0);
  EXPECT_EQ(empty.Variance(), 0.0);
  StratumMoments one;
  one.Add(4.2);
  EXPECT_EQ(one.Variance(), 0.0);  // needs two observations
  // Merging two halves equals folding the union directly.
  StratumMoments a, b, whole;
  for (double x : {0.1, 0.9, -0.4}) {
    a.Add(x);
    whole.Add(x);
  }
  for (double x : {1.5, -2.0}) {
    b.Add(x);
    whole.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count, whole.count);
  EXPECT_NEAR(a.Variance(), whole.Variance(), 1e-12);
}

TEST(NeymanStratumAllocationTest, SpendsExactBudgetWithinCapacity) {
  const int n = 6;
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) {
    moments[k] = MomentsWithSigma(0.1 * (k + 1));
  }
  for (int budget : {1, 7, 20, 40}) {
    std::vector<int> alloc = NeymanStratumAllocation(n, budget, moments);
    ASSERT_EQ(alloc.size(), static_cast<size_t>(n));
    int total = 0;
    for (int k = 0; k < n; ++k) {
      EXPECT_GE(alloc[k], 0);
      EXPECT_LE(alloc[k], static_cast<int>(BinomialU64(n, k + 1)));
      total += alloc[k];
    }
    EXPECT_EQ(total, budget) << "budget=" << budget;
  }
}

TEST(NeymanStratumAllocationTest, ClipsAtRemainingPopulation) {
  const int n = 4;  // populations 4, 6, 4, 1
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) moments[k] = MomentsWithSigma(1.0);
  // Budget beyond the total population: the allocation saturates at the
  // population and cannot overspend.
  std::vector<int> alloc = NeymanStratumAllocation(n, 1000, moments);
  EXPECT_EQ(alloc, (std::vector<int>{4, 6, 4, 1}));
  // Previously granted rounds shrink each stratum's remaining capacity.
  const std::vector<int64_t> granted = {4, 3, 0, 1};
  alloc = NeymanStratumAllocation(n, 1000, moments, granted);
  EXPECT_EQ(alloc, (std::vector<int>{0, 3, 4, 0}));
}

TEST(NeymanStratumAllocationTest, EqualVarianceDegeneratesToDefault) {
  // All-equal sigmas make the Neyman weights uninformative; the result
  // must be exactly the uniform round-robin default, so adaptive mode
  // never allocates worse than fixed mode for lack of signal.
  for (int n : {3, 5, 8}) {
    std::vector<StratumMoments> moments(n);
    for (int k = 0; k < n; ++k) moments[k] = MomentsWithSigma(0.7);
    for (int budget : {0, 5, 17, 64, 1000}) {
      EXPECT_EQ(NeymanStratumAllocation(n, budget, moments),
                DefaultStratumAllocation(n, budget))
          << "n=" << n << " budget=" << budget;
    }
  }
}

TEST(NeymanStratumAllocationTest, NoObservationsDegeneratesToDefault) {
  const int n = 6;
  std::vector<StratumMoments> moments(n);  // all empty
  for (int budget : {3, 12, 50}) {
    EXPECT_EQ(NeymanStratumAllocation(n, budget, moments),
              DefaultStratumAllocation(n, budget));
  }
}

TEST(NeymanStratumAllocationTest, DeterministicForFixedMoments) {
  const int n = 7;
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) {
    moments[k] = MomentsWithSigma(0.05 + 0.3 * ((k * 5) % n), 0.1 * k);
  }
  const std::vector<int> first = NeymanStratumAllocation(n, 33, moments);
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(NeymanStratumAllocation(n, 33, moments), first);
  }
}

TEST(NeymanStratumAllocationTest, HighVarianceStratumGetsMoreBudget) {
  // Strata 2 and 4 of n=6 have equal populations (C(6,2) = C(6,4) = 15),
  // isolating the sigma factor: the noisier one must receive more rounds.
  const int n = 6;
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) moments[k] = MomentsWithSigma(0.1);
  moments[3] = MomentsWithSigma(2.0);  // stratum 4
  std::vector<int> alloc = NeymanStratumAllocation(n, 24, moments);
  EXPECT_GT(alloc[3], alloc[1]);
}

TEST(NeymanStratumAllocationTest, UnmeasuredStrataStillReceiveBudget) {
  // A stratum with fewer than two observations has no variance estimate;
  // it borrows the average sigma instead of being starved forever.
  const int n = 5;
  std::vector<StratumMoments> moments(n);
  moments[0] = MomentsWithSigma(1.0);
  moments[2] = MomentsWithSigma(3.0);
  std::vector<int> alloc = NeymanStratumAllocation(n, 20, moments);
  int unmeasured_total = alloc[1] + alloc[3] + alloc[4];
  EXPECT_GT(unmeasured_total, 0);
}

TEST(AllocationBucketTest, InitialBucketsPartitionAllSizes) {
  for (int n : {1, 2, 5, 8, 12}) {
    for (int count : {1, 2, 3, n, n + 5}) {
      std::vector<AllocationBucket> buckets =
          InitialAllocationBuckets(n, count);
      ASSERT_FALSE(buckets.empty());
      EXPECT_EQ(buckets.front().lo, 1);
      EXPECT_EQ(buckets.back().hi, n);
      for (size_t b = 0; b < buckets.size(); ++b) {
        EXPECT_LE(buckets[b].lo, buckets[b].hi);
        if (b > 0) {
          EXPECT_EQ(buckets[b].lo, buckets[b - 1].hi + 1);
        }
      }
      EXPECT_EQ(buckets.size(),
                static_cast<size_t>(std::min(std::max(count, 1), n)));
    }
  }
}

TEST(AllocationBucketTest, PoolingMatchesManualMerge) {
  std::vector<StratumMoments> moments(4);
  for (int k = 0; k < 4; ++k) moments[k] = MomentsWithSigma(0.5 * (k + 1));
  StratumMoments pooled = PoolStratumMoments(moments, 2, 4);
  StratumMoments manual = moments[1];
  manual.Merge(moments[2]);
  manual.Merge(moments[3]);
  EXPECT_EQ(pooled.count, manual.count);
  EXPECT_NEAR(pooled.Variance(), manual.Variance(), 1e-12);
}

TEST(AllocationBucketTest, RefineSplitsTheDominantBucket) {
  // Plant a high-variance coalition size (6) inside the upper half of
  // n=8: refinement must repeatedly split the bucket holding it until it
  // is isolated, then stop.
  const int n = 8;
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) moments[k] = MomentsWithSigma(0.01);
  moments[5] = MomentsWithSigma(5.0);  // size 6
  std::vector<AllocationBucket> buckets = InitialAllocationBuckets(n, 2);
  ASSERT_EQ(buckets.size(), 2u);
  int splits = 0;
  while (RefineDominantBucket(n, buckets, moments, 0.5)) {
    ++splits;
    ASSERT_LE(splits, n);  // must terminate
  }
  EXPECT_GT(splits, 0);
  // The bucket containing size 6 ends as a singleton; the partition of
  // 1..n stays contiguous throughout.
  bool found = false;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (b > 0) {
      EXPECT_EQ(buckets[b].lo, buckets[b - 1].hi + 1);
    }
    if (buckets[b].lo <= 6 && 6 <= buckets[b].hi) {
      found = true;
      EXPECT_EQ(buckets[b].lo, buckets[b].hi);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(buckets.front().lo, 1);
  EXPECT_EQ(buckets.back().hi, n);
}

TEST(AllocationBucketTest, RefineNeedsEvidenceAndDominance) {
  const int n = 6;
  std::vector<StratumMoments> moments(n);
  for (int k = 0; k < n; ++k) moments[k] = MomentsWithSigma(1.0);
  std::vector<AllocationBucket> buckets = InitialAllocationBuckets(n, 2);
  // Equal variance everywhere: no bucket dominates at threshold 0.9.
  EXPECT_FALSE(RefineDominantBucket(n, buckets, moments, 0.9));
  EXPECT_EQ(buckets.size(), 2u);
  // No observations at all: nothing to act on.
  std::vector<StratumMoments> blank(n);
  EXPECT_FALSE(RefineDominantBucket(n, buckets, blank, 0.5));
}

// ---------------------------------------------------------------------------
// The adaptive estimator end to end.

TEST(AdaptiveStratifiedTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(7, 23);
  UtilityCache cache(&table);
  AdaptiveAllocationConfig config;
  config.total_rounds = 40;
  config.reallocate_every = 8;
  config.seed = 3;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = AdaptiveStratifiedShapley(s1, config);
  Result<ValuationResult> r2 = AdaptiveStratifiedShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
  EXPECT_EQ(r1->num_trainings, r2->num_trainings);
}

TEST(AdaptiveStratifiedTest, BudgetIsRespected) {
  TableUtility table = RandomTable(6, 29);
  UtilityCache cache(&table);
  AdaptiveAllocationConfig config;
  config.total_rounds = 14;
  config.seed = 5;
  UtilitySession session(&cache);
  Result<ValuationResult> result = AdaptiveStratifiedShapley(session, config);
  ASSERT_TRUE(result.ok());
  // gamma sampling rounds plus the always-evaluated empty coalition.
  EXPECT_LE(result->num_trainings, 14u + 1u);
  for (double v : result->values) EXPECT_TRUE(std::isfinite(v));
}

TEST(AdaptiveStratifiedTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(8, 31);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  AdaptiveAllocationConfig config;
  config.total_rounds = 60;
  config.reallocate_every = 12;
  config.seed = 7;
  UtilitySession sequential(&cache);
  Result<ValuationResult> reference =
      AdaptiveStratifiedShapley(sequential, config);
  ASSERT_TRUE(reference.ok());
  UtilitySession batched(&cache, &pool);
  Result<ValuationResult> parallel =
      AdaptiveStratifiedShapley(batched, config);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->values, reference->values);
  EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
}

TEST(AdaptiveStratifiedTest, ConfigValidation) {
  TableUtility table = RandomTable(4, 37);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  AdaptiveAllocationConfig config;
  config.total_rounds = 0;
  EXPECT_FALSE(AdaptiveStratifiedShapley(session, config).ok());
  config = {};
  config.pilot_rounds_per_stratum = 0;
  EXPECT_FALSE(AdaptiveStratifiedShapley(session, config).ok());
  config = {};
  config.reallocate_every = 0;
  EXPECT_FALSE(AdaptiveStratifiedShapley(session, config).ok());
  config = {};
  config.refine_dominance = 0.0;
  EXPECT_FALSE(AdaptiveStratifiedShapley(session, config).ok());
  config = {};
  config.refine_dominance = 1.5;
  EXPECT_FALSE(AdaptiveStratifiedShapley(session, config).ok());
}

// ---------------------------------------------------------------------------
// Statistical regression: the adaptive mode's reason to exist. On a game
// whose utility noise is concentrated in one stratum, Neyman reallocation
// must reach the fixed allocation's error with measurably fewer trainings.

// Additive base utility (marginal contributions are noiseless) plus a
// deterministic per-coalition perturbation applied only to coalitions of
// size `noisy_size`: all paired-difference variance lives in strata
// noisy_size and noisy_size + 1, exactly the shape Neyman allocation
// exploits. The perturbation is a pure hash of the membership mask, so
// the game (and the test) is identical on every platform and run.
TableUtility NoisyStratumTable(int n, int noisy_size, double amplitude,
                               uint64_t seed) {
  Result<TableUtility> table = TableUtility::FromFunction(
      n, [&](const Coalition& s) {
        double base = 0.0;
        s.ForEach([&](int i) { base += 0.08 + 0.01 * i; });
        if (s.Count() == noisy_size) {
          uint64_t mask = 0;
          s.ForEach([&](int i) { mask |= (uint64_t{1} << i); });
          Rng noise(seed ^ (mask * 0x9e3779b97f4a7c15ull));
          base += noise.Uniform(-amplitude, amplitude);
        }
        return base;
      });
  FEDSHAP_CHECK(table.ok());
  return std::move(table).value();
}

TEST(AdaptiveStratifiedTest, ReachesTargetErrorWithFewerTrainingsThanFixed) {
  // Coalitions of size 6 (population C(10,6) = 210) carry all the noise;
  // everything is hash-seeded, so the whole comparison is deterministic
  // and identical on every platform — the margins below are tolerance
  // bands for algorithm changes, not for run-to-run jitter.
  const int n = 10;
  TableUtility table = NoisyStratumTable(n, 6, 2.0, 77);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const std::vector<int> budgets = {40, 60, 90, 130, 200, 300, 400};
  const std::vector<uint64_t> seeds = {101, 102, 103, 104, 105, 106};
  const double target = 0.30;  // relative l2, the Fig. 7 error metric

  // Mean error and mean trainings of one estimator at one budget.
  struct Point {
    double error = 0.0;
    double trainings = 0.0;
  };
  auto measure = [&](int gamma, bool adaptive) {
    Point point;
    for (uint64_t seed : seeds) {
      UtilitySession session(&cache);
      auto run = [&]() -> Result<ValuationResult> {
        // Both arms run the idealized estimator of the Thm. 1/2 analysis
        // (every paired combination evaluated), the regime the Neyman
        // error bound — and so the allocator — is derived for.
        if (adaptive) {
          AdaptiveAllocationConfig config;
          config.total_rounds = gamma;
          config.seed = seed;
          config.reallocate_every = 20;
          config.pair_policy = PairPolicy::kEvaluateOnDemand;
          return AdaptiveStratifiedShapley(session, config);
        }
        StratifiedConfig config;
        config.total_rounds = gamma;
        config.seed = seed;
        config.pair_policy = PairPolicy::kEvaluateOnDemand;
        return StratifiedSamplingShapley(session, config);
      };
      Result<ValuationResult> result = run();
      FEDSHAP_CHECK(result.ok());
      point.error += RelativeL2Error(exact->values, result->values);
      point.trainings += static_cast<double>(result->num_trainings);
    }
    point.error /= seeds.size();
    point.trainings /= seeds.size();
    return point;
  };
  // First budget on the ladder whose mean error reaches the target; the
  // trainings actually spent there are the cost of reaching it.
  auto trainings_to_target = [&](bool adaptive) {
    for (int gamma : budgets) {
      Point point = measure(gamma, adaptive);
      if (point.error <= target) return point.trainings;
    }
    return 1e9;  // never reached: dominates any real cost
  };
  const double fixed_cost = trainings_to_target(false);
  const double adaptive_cost = trainings_to_target(true);
  // Both estimators converge on this game...
  EXPECT_LT(fixed_cost, 1e9);
  EXPECT_LT(adaptive_cost, 1e9);
  // ...and the adaptive one gets there measurably cheaper (observed
  // ~497 vs ~655 trainings, a 0.76 ratio; the margin is deliberately
  // loose so only a real regression of the allocator trips it).
  EXPECT_LT(adaptive_cost, 0.85 * fixed_cost)
      << "adaptive=" << adaptive_cost << " fixed=" << fixed_cost;
  // At a shared mid-ladder budget the adaptive error is clearly lower
  // too (observed 0.20 vs 0.25).
  Point fixed_mid = measure(200, false);
  Point adaptive_mid = measure(200, true);
  EXPECT_LT(adaptive_mid.error, fixed_mid.error * 0.95)
      << "adaptive=" << adaptive_mid.error << " fixed=" << fixed_mid.error;
}

TEST(PerClientStratifiedTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(8, 17);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  for (SvScheme scheme : {SvScheme::kMarginal, SvScheme::kComplementary}) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 3;
    config.seed = 9;
    config.scheme = scheme;
    UtilitySession sequential(&cache);
    Result<ValuationResult> reference =
        PerClientStratifiedShapley(sequential, config);
    ASSERT_TRUE(reference.ok());
    UtilitySession batched(&cache, &pool);
    Result<ValuationResult> parallel =
        PerClientStratifiedShapley(batched, config);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->values, reference->values)
        << SvSchemeName(scheme);
    EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
  }
}
}  // namespace
}  // namespace fedshap
