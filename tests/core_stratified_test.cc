#include "core/stratified.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/valuation_metrics.h"
#include "test_util.h"
#include "util/combinatorics.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

TEST(StratumAllocationTest, SplitsBudgetRoundRobin) {
  std::vector<int> alloc = DefaultStratumAllocation(4, 8);
  ASSERT_EQ(alloc.size(), 4u);
  EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), 8);
  // Every stratum gets at least one sample with budget >= n.
  for (int m : alloc) EXPECT_GE(m, 1);
}

TEST(StratumAllocationTest, ClipsAtStratumPopulation) {
  // n=3: strata have C(3,1)=3, C(3,2)=3, C(3,3)=1 sets -> max total 7.
  std::vector<int> alloc = DefaultStratumAllocation(3, 100);
  EXPECT_EQ(alloc[0], 3);
  EXPECT_EQ(alloc[1], 3);
  EXPECT_EQ(alloc[2], 1);
}

TEST(StratumAllocationTest, ZeroBudget) {
  std::vector<int> alloc = DefaultStratumAllocation(5, 0);
  for (int m : alloc) EXPECT_EQ(m, 0);
}

TEST(StratifiedSamplingTest, FullSamplingReproducesExactMcSv) {
  // When every stratum is exhaustively sampled, the framework touches every
  // pair and the estimate collapses to the exact MC-SV.
  const int n = 5;
  TableUtility table = RandomTable(n, 11);
  UtilityCache cache(&table);

  StratifiedConfig config;
  config.scheme = SvScheme::kMarginal;
  config.rounds_per_stratum.clear();
  for (int k = 1; k <= n; ++k) {
    // Oversample so duplicates cannot leave a set unsampled... sampling is
    // with replacement, so instead sample each stratum's population many
    // times over.
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n, k)) * 30);
  }
  config.seed = 3;
  UtilitySession session(&cache);
  Result<ValuationResult> stratified =
      StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(stratified.ok());

  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());
  // With-replacement sampling at 30x population misses a given set with
  // probability < 1e-13 per stratum; treat as deterministic.
  EXPECT_LT(testing_util::MaxAbsDiff(stratified->values, exact->values),
            1e-9);
}

TEST(StratifiedSamplingTest, ApproximatelyUnbiasedOverManyRuns) {
  // Average the estimator over many independent runs: it should approach
  // the exact value. Theorem 1's unbiasedness is for the estimator that
  // always evaluates the paired combination, i.e. kEvaluateOnDemand.
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const int runs = 800;
  std::vector<double> mean(n, 0.0);
  for (int run = 0; run < runs; ++run) {
    StratifiedConfig config;
    config.scheme = SvScheme::kMarginal;
    config.pair_policy = PairPolicy::kEvaluateOnDemand;
    // Enough draws that every client almost surely appears in every
    // stratum (the regime Theorem 1 analyzes: m_{i,k} > 0), while stratum
    // 2 usually remains partially covered.
    config.rounds_per_stratum = {16, 8, 8, 1};
    config.seed = 1000 + run;
    UtilitySession session(&cache);
    Result<ValuationResult> result =
        StratifiedSamplingShapley(session, config);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < n; ++i) mean[i] += result->values[i];
  }
  for (int i = 0; i < n; ++i) mean[i] /= runs;
  // Loose tolerance: Monte Carlo average of 800 runs.
  EXPECT_LT(testing_util::MaxAbsDiff(mean, exact->values), 0.03);
}

TEST(StratifiedSamplingTest, BudgetIsRespected) {
  const int n = 6;
  TableUtility table = RandomTable(n, 13);
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.total_rounds = 10;
  config.seed = 5;
  UtilitySession session(&cache);
  Result<ValuationResult> result = StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(result.ok());
  // gamma sampled sets + the always-available empty set.
  EXPECT_LE(result->num_trainings, 10u + 1u);
}

TEST(StratifiedSamplingTest, CcSchemeAlsoFindsValuesWithFullSampling) {
  const int n = 4;
  TableUtility table = RandomTable(n, 17);
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.scheme = SvScheme::kComplementary;
  config.rounds_per_stratum.clear();
  for (int k = 1; k <= n; ++k) {
    config.rounds_per_stratum.push_back(
        static_cast<int>(BinomialU64(n, k)) * 30);
  }
  UtilitySession session(&cache);
  Result<ValuationResult> cc = StratifiedSamplingShapley(session, config);
  ASSERT_TRUE(cc.ok());
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyCc(exact_session);
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(cc->values, exact->values), 1e-9);
}

TEST(StratifiedSamplingTest, McHasLowerVarianceThanCcOnLinearRegression) {
  // Thm. 2: with the same sampling strategy, MC-SV yields lower variance
  // than CC-SV under the FL linear-regression noise model.
  LinearRegressionUtility::Params params;
  params.num_clients = 6;
  params.samples_per_client = 30;
  params.feature_dim = 3;
  params.noise_scale = 0.002;
  LinearRegressionUtility utility(params);

  const int runs = 150;
  const int n = params.num_clients;
  std::vector<std::vector<double>> mc_samples, cc_samples;
  for (int run = 0; run < runs; ++run) {
    utility.Reseed(7000 + run);  // fresh noise realization per run
    UtilityCache cache(&utility);  // fresh cache: utilities changed
    StratifiedConfig config;
    // Coverage-guaranteeing allocation: every client appears in every
    // stratum with near-certainty, so the run-to-run variance reflects
    // the utility noise (Thm. 2's setting) rather than Bernoulli
    // presence/absence of whole strata.
    config.rounds_per_stratum = {120, 30, 24, 24, 30, 1};
    config.pair_policy = PairPolicy::kEvaluateOnDemand;
    config.seed = 40 + run;
    config.scheme = SvScheme::kMarginal;
    UtilitySession mc_session(&cache);
    Result<ValuationResult> mc =
        StratifiedSamplingShapley(mc_session, config);
    ASSERT_TRUE(mc.ok());
    config.scheme = SvScheme::kComplementary;
    UtilitySession cc_session(&cache);
    Result<ValuationResult> cc =
        StratifiedSamplingShapley(cc_session, config);
    ASSERT_TRUE(cc.ok());
    mc_samples.push_back(mc->values);
    cc_samples.push_back(cc->values);
  }
  auto total_variance = [&](const std::vector<std::vector<double>>& runs_v) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double mean = 0.0;
      for (const auto& v : runs_v) mean += v[i];
      mean /= runs_v.size();
      double var = 0.0;
      for (const auto& v : runs_v) var += (v[i] - mean) * (v[i] - mean);
      total += var / runs_v.size();
    }
    return total;
  };
  EXPECT_LT(total_variance(mc_samples), total_variance(cc_samples));
}

TEST(StratifiedSamplingTest, PaperExampleSchemesDisagreeUnderSampling) {
  // Under partial sampling the two schemes give different estimates (as in
  // the paper's Example 2: 0.2588 vs 0.22) though both target the same SV.
  TableUtility table = PaperTableOne();
  UtilityCache cache(&table);
  StratifiedConfig config;
  config.total_rounds = 4;
  config.seed = 9;
  config.scheme = SvScheme::kMarginal;
  UtilitySession mc_session(&cache);
  Result<ValuationResult> mc = StratifiedSamplingShapley(mc_session, config);
  ASSERT_TRUE(mc.ok());
  config.scheme = SvScheme::kComplementary;
  UtilitySession cc_session(&cache);
  Result<ValuationResult> cc = StratifiedSamplingShapley(cc_session, config);
  ASSERT_TRUE(cc.ok());
  // Estimates exist and are finite for every client under both schemes.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(mc->values[i]));
    EXPECT_TRUE(std::isfinite(cc->values[i]));
  }
}

TEST(StratifiedSamplingTest, ConfigValidation) {
  TableUtility table = RandomTable(3, 19);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  StratifiedConfig config;
  config.rounds_per_stratum = {1, 2};  // wrong length for n=3
  EXPECT_FALSE(StratifiedSamplingShapley(session, config).ok());
}

TEST(PerClientStratifiedTest, UnbiasedOverManyRuns) {
  // The per-client estimator covers every stratum for every client, so it
  // is unbiased without any coverage caveat (Thm. 1's setting).
  const int n = 4;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  ASSERT_TRUE(exact.ok());

  const int runs = 600;
  std::vector<double> mean(n, 0.0);
  for (int run = 0; run < runs; ++run) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 1;
    config.seed = 5000 + run;
    UtilitySession session(&cache);
    Result<ValuationResult> result =
        PerClientStratifiedShapley(session, config);
    ASSERT_TRUE(result.ok());
    for (int i = 0; i < n; ++i) mean[i] += result->values[i];
  }
  for (int i = 0; i < n; ++i) mean[i] /= runs;
  EXPECT_LT(testing_util::MaxAbsDiff(mean, exact->values), 0.02);
}

TEST(PerClientStratifiedTest, McVarianceBelowCcOnFlShapedUtility) {
  // Thm. 2 / Fig. 10 in the per-client estimator: complementary
  // contributions disperse more than marginal contributions, so CC-SV has
  // the higher run-to-run variance at matched budgets.
  const int n = 6;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  const int runs = 200;
  std::vector<std::vector<double>> mc_samples, cc_samples;
  for (int run = 0; run < runs; ++run) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 2;
    config.seed = 9000 + run;
    config.scheme = SvScheme::kMarginal;
    UtilitySession mc_session(&cache);
    Result<ValuationResult> mc =
        PerClientStratifiedShapley(mc_session, config);
    ASSERT_TRUE(mc.ok());
    mc_samples.push_back(mc->values);
    config.scheme = SvScheme::kComplementary;
    UtilitySession cc_session(&cache);
    Result<ValuationResult> cc =
        PerClientStratifiedShapley(cc_session, config);
    ASSERT_TRUE(cc.ok());
    cc_samples.push_back(cc->values);
  }
  auto total_variance = [&](const std::vector<std::vector<double>>& v) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double mean = 0.0;
      for (const auto& run : v) mean += run[i];
      mean /= v.size();
      double var = 0.0;
      for (const auto& run : v) var += (run[i] - mean) * (run[i] - mean);
      total += var / v.size();
    }
    return total;
  };
  EXPECT_LT(total_variance(mc_samples), total_variance(cc_samples));
}

TEST(PerClientStratifiedTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(5, 3);
  UtilityCache cache(&table);
  PerClientStratifiedConfig config;
  config.samples_per_stratum = 2;
  config.seed = 11;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = PerClientStratifiedShapley(s1, config);
  Result<ValuationResult> r2 = PerClientStratifiedShapley(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(PerClientStratifiedTest, Validation) {
  TableUtility table = RandomTable(3, 5);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  PerClientStratifiedConfig config;
  config.samples_per_stratum = 0;
  EXPECT_FALSE(PerClientStratifiedShapley(session, config).ok());
}

TEST(SmallestFirstAllocationTest, CoversTinyStrataFirst) {
  // n=6: populations 6,15,20,15,6,1. The grand coalition (population 1)
  // and the singleton stratum are budgeted before the big middle strata.
  std::vector<int> alloc = SmallestFirstAllocation(6, 40);
  ASSERT_EQ(alloc.size(), 6u);
  EXPECT_GT(alloc[5], 0);  // stratum 6 (grand coalition) first
  EXPECT_GT(alloc[0], 0);  // singletons next
  EXPECT_EQ(alloc[2], 0);  // population-20 stratum starved at this budget
}

TEST(SmallestFirstAllocationTest, SpendsWholeBudget) {
  for (int budget : {0, 10, 100, 5000}) {
    std::vector<int> alloc = SmallestFirstAllocation(5, budget);
    EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0), budget);
  }
}

TEST(SvSchemeNameTest, Names) {
  EXPECT_STREQ(SvSchemeName(SvScheme::kMarginal), "MC-SV");
  EXPECT_STREQ(SvSchemeName(SvScheme::kComplementary), "CC-SV");
}

TEST(StratifiedSamplingTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(9, 13);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  for (SvScheme scheme : {SvScheme::kMarginal, SvScheme::kComplementary}) {
    StratifiedConfig config;
    config.total_rounds = 50;
    config.seed = 5;
    config.scheme = scheme;
    UtilitySession sequential(&cache);
    Result<ValuationResult> reference =
        StratifiedSamplingShapley(sequential, config);
    ASSERT_TRUE(reference.ok());
    UtilitySession batched(&cache, &pool);
    Result<ValuationResult> parallel =
        StratifiedSamplingShapley(batched, config);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->values, reference->values)
        << SvSchemeName(scheme);
    EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
    EXPECT_EQ(parallel->num_trainings, reference->num_trainings);
  }
}

TEST(PerClientStratifiedTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(8, 17);
  UtilityCache cache(&table);
  ThreadPool pool(4);
  for (SvScheme scheme : {SvScheme::kMarginal, SvScheme::kComplementary}) {
    PerClientStratifiedConfig config;
    config.samples_per_stratum = 3;
    config.seed = 9;
    config.scheme = scheme;
    UtilitySession sequential(&cache);
    Result<ValuationResult> reference =
        PerClientStratifiedShapley(sequential, config);
    ASSERT_TRUE(reference.ok());
    UtilitySession batched(&cache, &pool);
    Result<ValuationResult> parallel =
        PerClientStratifiedShapley(batched, config);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->values, reference->values)
        << SvSchemeName(scheme);
    EXPECT_EQ(parallel->num_evaluations, reference->num_evaluations);
  }
}
}  // namespace
}  // namespace fedshap
