/// Kernel-equivalence suite: every batched kernel of ml/matrix.h is
/// cross-checked against a naive scalar reference on randomized shapes
/// (including non-multiple-of-tile sizes that exercise the remainder
/// paths), and every model's per-step loss/gradient from
/// ComputeGradientBatched is cross-checked against the per-example
/// reference ComputeGradient. The tolerance contract is the one
/// documented in ml/matrix.h: |batched - reference| <= kKernelAbsTol +
/// kKernelRelTol * |reference| per element; element-wise kernels must
/// match to float rounding.
///
/// The whole suite is *parameterized over every kernel backend this
/// machine can execute* (scalar, AVX2, AVX-512 — see
/// ml/kernel_backend.h): each TEST_P below runs once per backend with
/// the dispatch table pinned to it, so a vector backend that drifts
/// from the contract fails here by name. Element-wise kernels are
/// additionally cross-checked *bitwise* against the scalar backend.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "ml/cnn.h"
#include "ml/kernel_backend.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "util/logging.h"
#include "util/random.h"

namespace fedshap {
namespace {

std::vector<float> RandomBuffer(size_t n, Rng& rng, double lo = -1.0,
                                double hi = 1.0) {
  std::vector<float> buf(n);
  for (float& v : buf) v = static_cast<float>(rng.Uniform(lo, hi));
  return buf;
}

void ExpectAllClose(const std::vector<float>& actual,
                    const std::vector<float>& reference,
                    const char* what) {
  ASSERT_EQ(actual.size(), reference.size()) << what;
  for (size_t i = 0; i < actual.size(); ++i) {
    const float tol =
        kKernelAbsTol + kKernelRelTol * std::fabs(reference[i]);
    EXPECT_NEAR(actual[i], reference[i], tol)
        << what << " element " << i;
  }
}

/// Every backend compiled into this binary that the CPU can execute.
std::vector<KernelBackend> AvailableBackends() {
  std::vector<KernelBackend> backends;
  for (KernelBackend backend :
       {KernelBackend::kScalar, KernelBackend::kAvx2,
        KernelBackend::kAvx512}) {
    if (KernelBackendAvailable(backend)) backends.push_back(backend);
  }
  return backends;
}

/// Pins the dispatch table to the parameter backend for the test body,
/// restoring the entry backend afterwards.
class KernelBackendSuite : public ::testing::TestWithParam<KernelBackend> {
 protected:
  void SetUp() override {
    original_ = SelectedKernelBackend();
    ASSERT_TRUE(SetKernelBackend(GetParam()).ok());
  }
  void TearDown() override {
    ASSERT_TRUE(SetKernelBackend(original_).ok());
  }

 private:
  KernelBackend original_ = KernelBackend::kScalar;
};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelBackendSuite,
    ::testing::ValuesIn(AvailableBackends()),
    [](const ::testing::TestParamInfo<KernelBackend>& info) {
      return std::string(KernelBackendName(info.param));
    });

/// Random shapes that exercise the 4-row / 2-k remainder paths: every
/// dimension is drawn from [1, 40] so tiles of 4 and unrolls of 2 hit
/// partial iterations constantly.
struct Shape {
  size_t m, k, n;
};

std::vector<Shape> RandomShapes(uint64_t seed) {
  Rng rng(seed);
  std::vector<Shape> shapes;
  for (int i = 0; i < 12; ++i) {
    shapes.push_back({static_cast<size_t>(rng.UniformInt(1, 40)),
                      static_cast<size_t>(rng.UniformInt(1, 40)),
                      static_cast<size_t>(rng.UniformInt(1, 40))});
  }
  // Pin the corners: single row/col/reduction, and a larger-than-panel k.
  shapes.push_back({1, 1, 1});
  shapes.push_back({4, 300, 8});
  shapes.push_back({32, 64, 16});
  return shapes;
}

// ---------------------------------------------------------------------------
// Raw kernel cross-checks

TEST_P(KernelBackendSuite, MatMulMatchesNaive) {
  for (Shape s : RandomShapes(11)) {
    Rng rng(s.m * 131 + s.k * 17 + s.n);
    std::vector<float> a = RandomBuffer(s.m * s.k, rng);
    std::vector<float> b = RandomBuffer(s.k * s.n, rng);
    std::vector<float> c(s.m * s.n, -7.0f);  // stale content must vanish
    MatMul(a.data(), s.m, s.k, b.data(), s.n, c.data());
    std::vector<float> ref(s.m * s.n, 0.0f);
    for (size_t i = 0; i < s.m; ++i) {
      for (size_t j = 0; j < s.n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < s.k; ++kk) {
          acc += a[i * s.k + kk] * b[kk * s.n + j];
        }
        ref[i * s.n + j] = acc;
      }
    }
    ExpectAllClose(c, ref, "MatMul");
  }
}

TEST_P(KernelBackendSuite, MatMulAccAccumulatesOntoSeed) {
  for (Shape s : RandomShapes(13)) {
    Rng rng(s.m * 7 + s.k * 3 + s.n);
    std::vector<float> a = RandomBuffer(s.m * s.k, rng);
    std::vector<float> b = RandomBuffer(s.k * s.n, rng);
    std::vector<float> seed = RandomBuffer(s.m * s.n, rng);
    std::vector<float> c = seed;
    MatMulAcc(a.data(), s.m, s.k, b.data(), s.n, c.data());
    std::vector<float> ref = seed;
    for (size_t i = 0; i < s.m; ++i) {
      for (size_t j = 0; j < s.n; ++j) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < s.k; ++kk) {
          acc += a[i * s.k + kk] * b[kk * s.n + j];
        }
        ref[i * s.n + j] += acc;
      }
    }
    ExpectAllClose(c, ref, "MatMulAcc");
  }
}

TEST_P(KernelBackendSuite, MatTMatMatchesNaive) {
  for (Shape s : RandomShapes(17)) {
    // Here m is the shared (batch) dimension: a is m x k, b is m x n.
    Rng rng(s.m + s.k * 29 + s.n * 5);
    std::vector<float> a = RandomBuffer(s.m * s.k, rng);
    std::vector<float> b = RandomBuffer(s.m * s.n, rng);
    std::vector<float> c(s.k * s.n, 3.0f);
    MatTMat(a.data(), s.m, s.k, b.data(), s.n, c.data());
    std::vector<float> ref(s.k * s.n, 0.0f);
    for (size_t r = 0; r < s.m; ++r) {
      for (size_t kk = 0; kk < s.k; ++kk) {
        for (size_t j = 0; j < s.n; ++j) {
          ref[kk * s.n + j] += a[r * s.k + kk] * b[r * s.n + j];
        }
      }
    }
    ExpectAllClose(c, ref, "MatTMat");
  }
}

TEST_P(KernelBackendSuite, AddOuterBatchMatchesNaiveWithAlphaAndSparsity) {
  for (Shape s : RandomShapes(19)) {
    Rng rng(s.m * 41 + s.k + s.n * 11);
    const float alpha = static_cast<float>(rng.Uniform(0.25, 2.0));
    // a gets exact zeros to exercise the skip path.
    std::vector<float> a = RandomBuffer(s.m * s.k, rng);
    for (float& v : a) {
      if (rng.Bernoulli(0.4)) v = 0.0f;
    }
    std::vector<float> b = RandomBuffer(s.m * s.n, rng);
    std::vector<float> seed = RandomBuffer(s.k * s.n, rng);
    std::vector<float> acc = seed;
    AddOuterBatch(acc.data(), s.k, s.n, alpha, a.data(), b.data(), s.m);
    std::vector<float> ref = seed;
    for (size_t r = 0; r < s.m; ++r) {
      for (size_t kk = 0; kk < s.k; ++kk) {
        for (size_t j = 0; j < s.n; ++j) {
          ref[kk * s.n + j] += alpha * a[r * s.k + kk] * b[r * s.n + j];
        }
      }
    }
    ExpectAllClose(acc, ref, "AddOuterBatch");
  }
}

TEST(KernelEquivalence, TransposeIsExact) {
  for (Shape s : RandomShapes(23)) {
    Rng rng(s.m + s.n);
    std::vector<float> a = RandomBuffer(s.m * s.n, rng);
    std::vector<float> out(s.m * s.n, 0.0f);
    Transpose(a.data(), s.m, s.n, out.data());
    for (size_t r = 0; r < s.m; ++r) {
      for (size_t c = 0; c < s.n; ++c) {
        EXPECT_EQ(out[c * s.m + r], a[r * s.n + c]);
      }
    }
    // Also the > 32x32 blocked path.
    std::vector<float> big = RandomBuffer(48 * 50, rng);
    std::vector<float> big_t(48 * 50, 0.0f);
    Transpose(big.data(), 48, 50, big_t.data());
    for (size_t r = 0; r < 48; ++r) {
      for (size_t c = 0; c < 50; ++c) {
        EXPECT_EQ(big_t[c * 48 + r], big[r * 50 + c]);
      }
    }
  }
}

TEST_P(KernelBackendSuite, BiasReluAndMaskKernelsAreExact) {
  Rng rng(29);
  const size_t rows = 13, cols = 27;
  std::vector<float> m = RandomBuffer(rows * cols, rng);
  std::vector<float> bias = RandomBuffer(cols, rng);

  std::vector<float> plain = m;
  AddBiasRows(plain.data(), rows, cols, bias.data());
  std::vector<float> fused = m;
  AddBiasReluRows(fused.data(), rows, cols, bias.data());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const float expected = m[r * cols + c] + bias[c];
      EXPECT_FLOAT_EQ(plain[r * cols + c], expected);
      EXPECT_FLOAT_EQ(fused[r * cols + c],
                      expected > 0.0f ? expected : 0.0f);
    }
  }

  std::vector<float> delta = RandomBuffer(rows * cols, rng);
  std::vector<float> masked = delta;
  ReluMaskBackward(masked.data(), fused.data(), rows * cols);
  for (size_t i = 0; i < rows * cols; ++i) {
    EXPECT_FLOAT_EQ(masked[i], fused[i] > 0.0f ? delta[i] : 0.0f);
  }
}

TEST_P(KernelBackendSuite, SoftmaxRowsMatchesSoftmaxInPlaceBitwise) {
  Rng rng(31);
  const size_t rows = 9, cols = 10;
  std::vector<float> m = RandomBuffer(rows * cols, rng, -4.0, 4.0);
  std::vector<float> batched = m;
  SoftmaxRows(batched.data(), rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<float> row(m.begin() + r * cols, m.begin() + (r + 1) * cols);
    SoftmaxInPlace(row);
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(batched[r * cols + c], row[c]) << "row " << r;
    }
  }
}

TEST_P(KernelBackendSuite, ColumnSumsMatchesRowOrderAccumulationBitwise) {
  Rng rng(37);
  const size_t rows = 21, cols = 15;
  std::vector<float> m = RandomBuffer(rows * cols, rng);
  std::vector<float> out(cols, 99.0f);
  ColumnSums(m.data(), rows, cols, out.data());
  std::vector<float> ref(cols, 0.0f);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) ref[c] += m[r * cols + c];
  }
  for (size_t c = 0; c < cols; ++c) EXPECT_EQ(out[c], ref[c]);
}

TEST_P(KernelBackendSuite, FusedSgdStepsMatchScalarLoops) {
  Rng rng(41);
  const size_t n = 137;  // odd length: exercises vector tails
  const float lr = 0.05f, wd = 1e-3f, momentum = 0.9f, mu = 0.01f;
  std::vector<float> p0 = RandomBuffer(n, rng);
  std::vector<float> g = RandomBuffer(n, rng);
  std::vector<float> v0 = RandomBuffer(n, rng);
  std::vector<float> ref_buf = RandomBuffer(n, rng);

  std::vector<float> p = p0;
  SgdStep(p.data(), g.data(), n, lr, wd);
  for (size_t i = 0; i < n; ++i) {
    const float expected = p0[i] - lr * (g[i] + wd * p0[i]);
    EXPECT_FLOAT_EQ(p[i], expected);
  }

  p = p0;
  std::vector<float> v = v0;
  SgdMomentumStep(p.data(), v.data(), g.data(), n, lr, momentum, wd);
  for (size_t i = 0; i < n; ++i) {
    const float ev = momentum * v0[i] + g[i] + wd * p0[i];
    EXPECT_FLOAT_EQ(v[i], ev);
    EXPECT_FLOAT_EQ(p[i], p0[i] - lr * ev);
  }

  std::vector<float> g2 = g;
  AddProximal(g2.data(), p0.data(), ref_buf.data(), n, mu);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_FLOAT_EQ(g2[i], g[i] + mu * (p0[i] - ref_buf[i]));
  }
}

// ---------------------------------------------------------------------------
// Model-level equivalence: batched vs per-example reference on randomized
// shapes and batch sizes (1 exercises the degenerate minibatch, odd sizes
// the remainder tiles).

void ExpectGradientEquivalent(const Model& model, const Dataset& data,
                              size_t batch_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<size_t> batch;
  std::vector<int> picks = rng.SampleWithoutReplacement(
      static_cast<int>(data.size()),
      static_cast<int>(std::min(batch_size, data.size())));
  for (int p : picks) batch.push_back(static_cast<size_t>(p));

  std::vector<float> ref_grad, batched_grad;
  const double ref_loss = model.ComputeGradient(data, batch, ref_grad);
  const double batched_loss =
      model.ComputeGradientBatched(data, batch, batched_grad);
  EXPECT_NEAR(batched_loss, ref_loss,
              kKernelAbsTol + kKernelRelTol * std::fabs(ref_loss))
      << model.Name() << " loss, batch " << batch.size();
  ExpectAllClose(batched_grad, ref_grad, model.Name().c_str());
}

Dataset RandomClassificationData(int dim, int classes, size_t rows,
                                 uint64_t seed) {
  Rng rng(seed);
  Result<Dataset> data = GenerateBlobs(classes, dim, 3.0, rows, rng);
  FEDSHAP_CHECK(data.ok());
  return std::move(data).value();
}

TEST(ModelEquivalence, LinearRegressionBatchedMatchesReference) {
  Rng shape_rng(43);
  for (int trial = 0; trial < 6; ++trial) {
    const int dim = static_cast<int>(shape_rng.UniformInt(1, 48));
    Result<Dataset> data = Dataset::Create(dim, 0);
    ASSERT_TRUE(data.ok());
    Rng rng(1000 + trial);
    std::vector<float> row(dim);
    for (int i = 0; i < 64; ++i) {
      for (float& v : row) v = static_cast<float>(rng.Gaussian());
      data->Append(row, static_cast<float>(rng.Gaussian()));
    }
    LinearRegression model(dim);
    model.InitializeParameters(rng);
    for (size_t batch : {size_t{1}, size_t{7}, size_t{32}, size_t{64}}) {
      ExpectGradientEquivalent(model, *data, batch, 77 + trial);
    }
  }
}

TEST(ModelEquivalence, LogisticRegressionBatchedMatchesReference) {
  Rng shape_rng(47);
  for (int trial = 0; trial < 6; ++trial) {
    const int dim = static_cast<int>(shape_rng.UniformInt(1, 40));
    const int classes = static_cast<int>(shape_rng.UniformInt(2, 11));
    Dataset data = RandomClassificationData(dim, classes, 64, 2000 + trial);
    LogisticRegression model(dim, classes);
    Rng rng(3000 + trial);
    model.InitializeParameters(rng);
    for (size_t batch : {size_t{1}, size_t{5}, size_t{32}, size_t{64}}) {
      ExpectGradientEquivalent(model, data, batch, 87 + trial);
    }
  }
}

TEST_P(KernelBackendSuite, MlpBatchedMatchesReference) {
  Rng shape_rng(53);
  for (int trial = 0; trial < 6; ++trial) {
    const int dim = static_cast<int>(shape_rng.UniformInt(2, 48));
    const int hidden = static_cast<int>(shape_rng.UniformInt(1, 24));
    const int classes = static_cast<int>(shape_rng.UniformInt(2, 11));
    Dataset data = RandomClassificationData(dim, classes, 64, 4000 + trial);
    Mlp model(dim, hidden, classes);
    Rng rng(5000 + trial);
    model.InitializeParameters(rng);
    for (size_t batch : {size_t{1}, size_t{9}, size_t{32}, size_t{64}}) {
      ExpectGradientEquivalent(model, data, batch, 97 + trial);
    }
  }
}

TEST_P(KernelBackendSuite, CnnBatchedMatchesReference) {
  Rng shape_rng(59);
  for (int trial = 0; trial < 4; ++trial) {
    const int side = static_cast<int>(shape_rng.UniformInt(6, 10));
    const int filters = static_cast<int>(shape_rng.UniformInt(1, 5));
    const int classes = static_cast<int>(shape_rng.UniformInt(2, 8));
    DigitsConfig config;
    config.image_size = side;
    config.num_classes = classes;
    Rng data_rng(6000 + trial);
    Result<FederatedSource> source = GenerateDigits(config, 64, data_rng);
    ASSERT_TRUE(source.ok());
    Cnn model(side, filters, classes);
    Rng rng(7000 + trial);
    model.InitializeParameters(rng);
    for (size_t batch : {size_t{1}, size_t{11}, size_t{32}}) {
      ExpectGradientEquivalent(model, source->data, batch, 107 + trial);
    }
  }
}

TEST(ModelEquivalence, BatchedGradientAgreesWithNumericalGradient) {
  // Independent of the reference path: the batched gradient must also
  // descend the true loss surface.
  Dataset data = RandomClassificationData(6, 3, 24, 8080);
  Mlp model(6, 5, 3);
  Rng rng(909);
  model.InitializeParameters(rng);
  std::vector<size_t> batch;
  for (size_t i = 0; i < data.size(); ++i) batch.push_back(i);

  std::vector<float> analytic;
  model.ComputeGradientBatched(data, batch, analytic);
  std::vector<float> numeric = NumericalGradient(model, data, batch);
  ASSERT_EQ(analytic.size(), numeric.size());
  double dot = 0.0, na = 0.0, nn = 0.0;
  for (size_t i = 0; i < analytic.size(); ++i) {
    dot += static_cast<double>(analytic[i]) * numeric[i];
    na += static_cast<double>(analytic[i]) * analytic[i];
    nn += static_cast<double>(numeric[i]) * numeric[i];
  }
  ASSERT_GT(na, 0.0);
  ASSERT_GT(nn, 0.0);
  EXPECT_GT(dot / std::sqrt(na * nn), 0.999);
}

// ---------------------------------------------------------------------------
// Cross-backend checks: the scalar backend is the reference. GEMM-shaped
// kernels agree within the tolerance contract; element-wise kernels are
// bit-identical (they run the same per-element arithmetic order).

/// Runs `fn` under `backend`, restoring the entry backend afterwards.
template <typename Fn>
void WithBackend(KernelBackend backend, Fn fn) {
  const KernelBackend original = SelectedKernelBackend();
  ASSERT_TRUE(SetKernelBackend(backend).ok());
  fn();
  ASSERT_TRUE(SetKernelBackend(original).ok());
}

TEST(CrossBackendEquivalence, GemmKernelsMatchScalarWithinTolerance) {
  for (Shape s : RandomShapes(61)) {
    Rng rng(s.m * 3 + s.k * 7 + s.n * 13);
    std::vector<float> a = RandomBuffer(s.m * s.k, rng);
    std::vector<float> b = RandomBuffer(s.k * s.n, rng);
    std::vector<float> scalar_out(s.m * s.n, 0.0f);
    WithBackend(KernelBackend::kScalar, [&] {
      MatMul(a.data(), s.m, s.k, b.data(), s.n, scalar_out.data());
    });
    for (KernelBackend backend : AvailableBackends()) {
      if (backend == KernelBackend::kScalar) continue;
      SCOPED_TRACE(KernelBackendName(backend));
      std::vector<float> vector_out(s.m * s.n, -1.0f);
      WithBackend(backend, [&] {
        MatMul(a.data(), s.m, s.k, b.data(), s.n, vector_out.data());
      });
      ExpectAllClose(vector_out, scalar_out, "MatMul cross-backend");
    }
  }
}

TEST(CrossBackendEquivalence, ElementwiseKernelsBitIdenticalToScalar) {
  Rng rng(67);
  const size_t rows = 11, cols = 37;  // odd sizes: vector tails
  const size_t n = rows * cols;
  const float lr = 0.07f, wd = 2e-3f, momentum = 0.85f, mu = 0.02f;
  std::vector<float> m0 = RandomBuffer(n, rng);
  std::vector<float> bias = RandomBuffer(cols, rng);
  std::vector<float> p0 = RandomBuffer(n, rng);
  std::vector<float> v0 = RandomBuffer(n, rng);
  std::vector<float> g0 = RandomBuffer(n, rng);
  std::vector<float> ref = RandomBuffer(n, rng);
  std::vector<float> logits = RandomBuffer(n, rng, -4.0, 4.0);

  struct Snapshot {
    std::vector<float> biased, relu, masked, softmax, sums, p, v, p2, v2, g;
  };
  auto run_all = [&] {
    Snapshot out;
    out.biased = m0;
    AddBiasRows(out.biased.data(), rows, cols, bias.data());
    out.relu = m0;
    AddBiasReluRows(out.relu.data(), rows, cols, bias.data());
    out.masked = g0;
    ReluMaskBackward(out.masked.data(), out.relu.data(), n);
    out.softmax = logits;
    SoftmaxRows(out.softmax.data(), rows, cols);
    out.sums.resize(cols);
    ColumnSums(m0.data(), rows, cols, out.sums.data());
    out.p = p0;
    SgdStep(out.p.data(), g0.data(), n, lr, wd);
    out.p2 = p0;
    out.v2 = v0;
    SgdMomentumStep(out.p2.data(), out.v2.data(), g0.data(), n, lr,
                    momentum, wd);
    out.g = g0;
    AddProximal(out.g.data(), p0.data(), ref.data(), n, mu);
    return out;
  };

  Snapshot scalar;
  WithBackend(KernelBackend::kScalar, [&] { scalar = run_all(); });
  for (KernelBackend backend : AvailableBackends()) {
    if (backend == KernelBackend::kScalar) continue;
    SCOPED_TRACE(KernelBackendName(backend));
    Snapshot vec;
    WithBackend(backend, [&] { vec = run_all(); });
    auto expect_bits = [](const std::vector<float>& actual,
                          const std::vector<float>& expected,
                          const char* what) {
      ASSERT_EQ(actual.size(), expected.size()) << what;
      for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i], expected[i]) << what << " element " << i;
      }
    };
    expect_bits(vec.biased, scalar.biased, "AddBiasRows");
    expect_bits(vec.relu, scalar.relu, "AddBiasReluRows");
    expect_bits(vec.masked, scalar.masked, "ReluMaskBackward");
    expect_bits(vec.softmax, scalar.softmax, "SoftmaxRows");
    expect_bits(vec.sums, scalar.sums, "ColumnSums");
    expect_bits(vec.p, scalar.p, "SgdStep");
    expect_bits(vec.p2, scalar.p2, "SgdMomentumStep param");
    expect_bits(vec.v2, scalar.v2, "SgdMomentumStep velocity");
    expect_bits(vec.g, scalar.g, "AddProximal");
  }
}

TEST(CrossBackendEquivalence, FixedBackendIsDeterministicAcrossRuns) {
  for (KernelBackend backend : AvailableBackends()) {
    SCOPED_TRACE(KernelBackendName(backend));
    Rng rng(71);
    const size_t m = 13, k = 29, n = 21;
    std::vector<float> a = RandomBuffer(m * k, rng);
    std::vector<float> b = RandomBuffer(k * n, rng);
    std::vector<float> first(m * n), second(m * n);
    WithBackend(backend, [&] {
      MatMul(a.data(), m, k, b.data(), n, first.data());
      MatMul(a.data(), m, k, b.data(), n, second.data());
    });
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], second[i]) << "element " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// One whole SGD step / local training under both modes.

TEST(TrainSgdEquivalence, OneEpochParamsMatchWithinTolerance) {
  Dataset data = RandomClassificationData(10, 4, 48, 515);
  Mlp prototype(10, 8, 4);
  Rng init(616);
  prototype.InitializeParameters(init);
  const std::vector<float> start = prototype.GetParameters();

  SgdConfig config;
  config.epochs = 2;
  config.batch_size = 16;
  config.learning_rate = 0.2;
  config.momentum = 0.9;
  config.weight_decay = 1e-3;
  config.proximal_mu = 0.05;

  Mlp per_example = prototype;
  ASSERT_TRUE(per_example.SetParameters(start).ok());
  SgdConfig ref_config = config;
  ref_config.gradient_mode = GradientMode::kPerExample;
  Rng rng_a(42);
  Result<double> loss_ref = TrainSgd(per_example, data, ref_config, rng_a);
  ASSERT_TRUE(loss_ref.ok());

  Mlp batched = prototype;
  ASSERT_TRUE(batched.SetParameters(start).ok());
  SgdConfig batched_config = config;
  batched_config.gradient_mode = GradientMode::kBatched;
  Rng rng_b(42);
  Result<double> loss_batched =
      TrainSgd(batched, data, batched_config, rng_b);
  ASSERT_TRUE(loss_batched.ok());

  // Both modes consumed the same shuffles, so batch order is identical;
  // parameters agree within the kernel tolerance (slightly relaxed: two
  // epochs of updates compound the per-step reassociation error).
  const std::vector<float> p_ref = per_example.GetParameters();
  const std::vector<float> p_batched = batched.GetParameters();
  ASSERT_EQ(p_ref.size(), p_batched.size());
  for (size_t i = 0; i < p_ref.size(); ++i) {
    const float tol =
        10.0f * (kKernelAbsTol + kKernelRelTol * std::fabs(p_ref[i]));
    EXPECT_NEAR(p_batched[i], p_ref[i], tol) << "param " << i;
  }
  EXPECT_NEAR(*loss_batched, *loss_ref, 1e-3);
}

}  // namespace
}  // namespace fedshap
