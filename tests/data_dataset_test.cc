#include "data/dataset.h"

#include <gtest/gtest.h>

namespace fedshap {
namespace {

Dataset MakeToy(int rows = 5, int features = 3, int classes = 2) {
  Result<Dataset> data = Dataset::Create(features, classes);
  EXPECT_TRUE(data.ok());
  Dataset d = std::move(data).value();
  std::vector<float> row(features);
  for (int i = 0; i < rows; ++i) {
    for (int f = 0; f < features; ++f) {
      row[f] = static_cast<float>(i * 10 + f);
    }
    d.Append(row.data(), static_cast<float>(i % classes));
  }
  return d;
}

TEST(DatasetTest, CreateValidatesSchema) {
  EXPECT_FALSE(Dataset::Create(0, 2).ok());
  EXPECT_FALSE(Dataset::Create(-1, 2).ok());
  EXPECT_FALSE(Dataset::Create(3, -1).ok());
  EXPECT_TRUE(Dataset::Create(3, 0).ok());  // regression
  EXPECT_TRUE(Dataset::Create(3, 10).ok());
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset d = MakeToy(4, 3, 2);
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_features(), 3);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_FLOAT_EQ(d.Value(2, 1), 21.0f);
  EXPECT_FLOAT_EQ(d.Target(3), 1.0f);
  EXPECT_EQ(d.ClassLabel(3), 1);
}

TEST(DatasetTest, AppendVectorChecksWidth) {
  Result<Dataset> d = Dataset::Create(2, 2);
  ASSERT_TRUE(d.ok());
  d->Append({1.0f, 2.0f}, 0.0f);
  EXPECT_EQ(d->size(), 1u);
}

TEST(DatasetTest, SubsetCopiesSelectedRows) {
  Dataset d = MakeToy(6);
  Dataset sub = d.Subset({5, 0, 2});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_FLOAT_EQ(sub.Value(0, 0), 50.0f);
  EXPECT_FLOAT_EQ(sub.Value(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(sub.Value(2, 0), 20.0f);
}

TEST(DatasetTest, HeadClampsToSize) {
  Dataset d = MakeToy(4);
  EXPECT_EQ(d.Head(2).size(), 2u);
  EXPECT_EQ(d.Head(100).size(), 4u);
  EXPECT_EQ(d.Head(0).size(), 0u);
}

TEST(DatasetTest, MergeConcatenates) {
  Dataset a = MakeToy(2);
  Dataset b = MakeToy(3);
  Result<Dataset> merged = Dataset::Merge({&a, &b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 5u);
  EXPECT_FLOAT_EQ(merged->Value(2, 0), 0.0f);  // b's first row
}

TEST(DatasetTest, MergeSkipsNullAndEmpty) {
  Dataset a = MakeToy(2);
  Result<Dataset> empty = Dataset::Create(3, 2);
  ASSERT_TRUE(empty.ok());
  Result<Dataset> merged = Dataset::Merge({nullptr, &a, &empty.value()});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 2u);
}

TEST(DatasetTest, MergeAllEmptyYieldsEmpty) {
  Result<Dataset> merged = Dataset::Merge({});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->empty());
}

TEST(DatasetTest, MergeRejectsSchemaMismatch) {
  Dataset a = MakeToy(2, 3, 2);
  Dataset b = MakeToy(2, 4, 2);
  EXPECT_FALSE(Dataset::Merge({&a, &b}).ok());
  Dataset c = MakeToy(2, 3, 5);
  EXPECT_FALSE(Dataset::Merge({&a, &c}).ok());
}

TEST(DatasetViewTest, GatherMatchesMergeRowForRow) {
  Dataset a = MakeToy(2);
  Dataset b = MakeToy(3);
  Result<Dataset> merged = Dataset::Merge({&a, &b});
  ASSERT_TRUE(merged.ok());
  Result<DatasetView> view = DatasetView::Gather({&a, &b});
  ASSERT_TRUE(view.ok());
  ASSERT_EQ(view->size(), merged->size());
  EXPECT_EQ(view->num_features(), merged->num_features());
  EXPECT_EQ(view->num_classes(), merged->num_classes());
  for (size_t i = 0; i < view->size(); ++i) {
    EXPECT_EQ(view->Target(i), merged->Target(i)) << "row " << i;
    EXPECT_EQ(view->ClassLabel(i), merged->ClassLabel(i)) << "row " << i;
    for (int f = 0; f < view->num_features(); ++f) {
      EXPECT_EQ(view->Value(i, f), merged->Value(i, f))
          << "row " << i << " feature " << f;
    }
  }
}

TEST(DatasetViewTest, ColumnSlicesAliasTheViewedStorageNoCopies) {
  Dataset a = MakeToy(3);
  Result<DatasetView> view = DatasetView::Gather({&a});
  ASSERT_TRUE(view.ok());
  for (int f = 0; f < view->num_features(); ++f) {
    std::vector<DatasetView::ColumnSlice> slices = view->ColumnSlices(f);
    ASSERT_EQ(slices.size(), 1u) << "feature " << f;
    EXPECT_EQ(slices[0].data, a.Column(f)) << "column pointer " << f;
    EXPECT_EQ(slices[0].size, a.size()) << "column size " << f;
  }
}

TEST(DatasetViewTest, ColumnSlicesSpanAllParts) {
  Dataset a = MakeToy(2);
  Dataset b = MakeToy(3);
  Result<DatasetView> view = DatasetView::Gather({&a, &b});
  ASSERT_TRUE(view.ok());
  std::vector<DatasetView::ColumnSlice> slices = view->ColumnSlices(1);
  ASSERT_EQ(slices.size(), 2u);
  EXPECT_EQ(slices[0].data, a.Column(1));
  EXPECT_EQ(slices[0].size, a.size());
  EXPECT_EQ(slices[1].data, b.Column(1));
  EXPECT_EQ(slices[1].size, b.size());
}

TEST(DatasetViewTest, GatherSkipsNullAndEmptyParts) {
  Dataset a = MakeToy(2);
  Result<Dataset> empty = Dataset::Create(3, 2);
  ASSERT_TRUE(empty.ok());
  Result<DatasetView> view =
      DatasetView::Gather({nullptr, &a, &empty.value()});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->size(), 2u);
}

TEST(DatasetViewTest, GatherAllEmptyYieldsEmptyView) {
  Result<DatasetView> view = DatasetView::Gather({});
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->empty());
  EXPECT_EQ(view->size(), 0u);
}

TEST(DatasetViewTest, GatherRejectsSchemaMismatch) {
  Dataset a = MakeToy(2, 3, 2);
  Dataset b = MakeToy(2, 4, 2);
  EXPECT_FALSE(DatasetView::Gather({&a, &b}).ok());
  Dataset c = MakeToy(2, 3, 5);
  EXPECT_FALSE(DatasetView::Gather({&a, &c}).ok());
}

TEST(DatasetViewTest, OfViewsWholeDataset) {
  Dataset a = MakeToy(4);
  DatasetView view = DatasetView::Of(a);
  ASSERT_EQ(view.size(), a.size());
  EXPECT_EQ(view.Value(0, 0), a.Value(0, 0));
  EXPECT_EQ(view.Target(3), a.Target(3));
}

TEST(DatasetTest, ShuffleKeepsRowIntegrity) {
  Dataset d = MakeToy(20);
  Rng rng(1);
  Dataset shuffled = d;
  shuffled.Shuffle(rng);
  ASSERT_EQ(shuffled.size(), d.size());
  // Every row must still have features consistent with its own pattern
  // (feature f = row_id * 10 + f), i.e. rows moved as units.
  for (size_t i = 0; i < shuffled.size(); ++i) {
    const float base = shuffled.Value(i, 0);
    EXPECT_FLOAT_EQ(shuffled.Value(i, 1), base + 1);
    EXPECT_FLOAT_EQ(shuffled.Value(i, 2), base + 2);
  }
}

TEST(DatasetTest, SplitPartitionsAllRows) {
  Dataset d = MakeToy(10);
  Rng rng(2);
  auto [train, test] = d.Split(0.7, rng);
  EXPECT_EQ(train.size(), 7u);
  EXPECT_EQ(test.size(), 3u);
}

TEST(DatasetTest, SplitExtremes) {
  Dataset d = MakeToy(4);
  Rng rng(3);
  auto [all, none] = d.Split(1.0, rng);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(none.size(), 0u);
  auto [empty, everything] = d.Split(0.0, rng);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(everything.size(), 4u);
}

TEST(DatasetTest, ClassHistogramCounts) {
  Dataset d = MakeToy(7, 3, 2);  // labels alternate 0,1,0,1,...
  std::vector<size_t> histogram = d.ClassHistogram();
  ASSERT_EQ(histogram.size(), 2u);
  EXPECT_EQ(histogram[0], 4u);
  EXPECT_EQ(histogram[1], 3u);
}

TEST(DatasetTest, DebugStringMentionsShape) {
  Dataset d = MakeToy(3, 2, 2);
  const std::string s = d.DebugString();
  EXPECT_NE(s.find("rows=3"), std::string::npos);
  EXPECT_NE(s.find("features=2"), std::string::npos);
}

}  // namespace
}  // namespace fedshap
