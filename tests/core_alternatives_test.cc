#include "core/alternatives.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/valuation_metrics.h"
#include "test_util.h"

namespace fedshap {
namespace {

using testing_util::MonotoneTable;
using testing_util::RandomTable;

TEST(ExactBanzhafTest, AdditiveGameMatchesShapley) {
  // For additive games every semivalue coincides: phi_i = U({i}).
  Result<TableUtility> table =
      TableUtility::FromFunction(5, [](const Coalition& s) {
        double total = 0.0;
        s.ForEach([&](int i) { total += 0.1 * (i + 1); });
        return total;
      });
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession banzhaf_session(&cache), shapley_session(&cache);
  Result<ValuationResult> banzhaf = ExactBanzhaf(banzhaf_session);
  Result<ValuationResult> shapley = ExactShapleyMc(shapley_session);
  ASSERT_TRUE(banzhaf.ok());
  ASSERT_TRUE(shapley.ok());
  EXPECT_LT(testing_util::MaxAbsDiff(banzhaf->values, shapley->values),
            1e-10);
}

TEST(ExactBanzhafTest, HandComputedTwoPlayerGame) {
  // n=2: phi_0^Bz = ((U({0})-U({})) + (U({0,1})-U({1}))) / 2.
  Result<TableUtility> table =
      TableUtility::FromValues(2, {0.0, 0.4, 0.3, 1.0});
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession session(&cache);
  Result<ValuationResult> banzhaf = ExactBanzhaf(session);
  ASSERT_TRUE(banzhaf.ok());
  EXPECT_NEAR(banzhaf->values[0], (0.4 + 0.7) / 2.0, 1e-12);
  EXPECT_NEAR(banzhaf->values[1], (0.3 + 0.6) / 2.0, 1e-12);
}

TEST(ExactBanzhafTest, NullPlayerGetsZero) {
  Result<TableUtility> table =
      TableUtility::FromFunction(4, [](const Coalition& s) {
        return 0.5 * s.Without(2).Count();
      });
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession session(&cache);
  Result<ValuationResult> banzhaf = ExactBanzhaf(session);
  ASSERT_TRUE(banzhaf.ok());
  EXPECT_NEAR(banzhaf->values[2], 0.0, 1e-12);
}

TEST(ExactBanzhafTest, DoesNotSatisfyEfficiencyInGeneral) {
  TableUtility table = MonotoneTable(4);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> banzhaf = ExactBanzhaf(session);
  ASSERT_TRUE(banzhaf.ok());
  const double u_full = table.Evaluate(Coalition::Full(4)).value();
  EXPECT_GT(EfficiencyResidual(banzhaf->values, u_full, 0.0), 0.01);
}

TEST(MonteCarloBanzhafTest, ConvergesToExact) {
  const int n = 5;
  TableUtility table = MonotoneTable(n);
  UtilityCache cache(&table);
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactBanzhaf(exact_session);
  ASSERT_TRUE(exact.ok());

  UtilitySession mc_session(&cache);
  BanzhafConfig config;
  config.samples = 20000;
  config.seed = 3;
  Result<ValuationResult> mc = MonteCarloBanzhaf(mc_session, config);
  ASSERT_TRUE(mc.ok());
  EXPECT_LT(RelativeL2Error(exact->values, mc->values), 0.1);
}

TEST(MonteCarloBanzhafTest, SampleReuse) {
  // MSR: every sample informs every client, so evaluations == samples.
  TableUtility table = RandomTable(6, 5);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  BanzhafConfig config;
  config.samples = 40;
  Result<ValuationResult> mc = MonteCarloBanzhaf(session, config);
  ASSERT_TRUE(mc.ok());
  EXPECT_EQ(mc->num_evaluations, 40u);
}

TEST(MonteCarloBanzhafTest, DeterministicPerSeed) {
  TableUtility table = RandomTable(5, 7);
  UtilityCache cache(&table);
  BanzhafConfig config;
  config.samples = 25;
  config.seed = 11;
  UtilitySession s1(&cache), s2(&cache);
  Result<ValuationResult> r1 = MonteCarloBanzhaf(s1, config);
  Result<ValuationResult> r2 = MonteCarloBanzhaf(s2, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->values, r2->values);
}

TEST(MonteCarloBanzhafTest, Validation) {
  TableUtility table = RandomTable(3, 9);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  BanzhafConfig config;
  config.samples = 0;
  EXPECT_FALSE(MonteCarloBanzhaf(session, config).ok());
}

TEST(LeaveOneOutTest, HandComputed) {
  TableUtility table = testing_util::PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> loo = LeaveOneOut(session);
  ASSERT_TRUE(loo.ok());
  // phi_i = U(N) - U(N \ {i}).
  EXPECT_NEAR(loo->values[0], 0.96 - 0.90, 1e-12);
  EXPECT_NEAR(loo->values[1], 0.96 - 0.90, 1e-12);
  EXPECT_NEAR(loo->values[2], 0.96 - 0.80, 1e-12);
  EXPECT_EQ(loo->num_trainings, 4u);  // U(N) + three leave-one-outs
}

TEST(LeaveOneOutTest, FailsSymmetryForDuplicates) {
  // Two perfectly redundant clients: LOO gives both ~0 although they are
  // jointly essential — the classic LOO failure the SV avoids.
  Result<TableUtility> table =
      TableUtility::FromFunction(3, [](const Coalition& s) {
        // Utility 1 iff client 0 present AND (client 1 or client 2).
        return (s.Contains(0) && (s.Contains(1) || s.Contains(2))) ? 1.0
                                                                   : 0.0;
      });
  ASSERT_TRUE(table.ok());
  UtilityCache cache(&table.value());
  UtilitySession loo_session(&cache), sv_session(&cache);
  Result<ValuationResult> loo = LeaveOneOut(loo_session);
  Result<ValuationResult> sv = ExactShapleyMc(sv_session);
  ASSERT_TRUE(loo.ok());
  ASSERT_TRUE(sv.ok());
  EXPECT_NEAR(loo->values[1], 0.0, 1e-12);
  EXPECT_NEAR(loo->values[2], 0.0, 1e-12);
  EXPECT_GT(sv->values[1], 0.1);  // SV credits redundant contributors
  EXPECT_NEAR(sv->values[1], sv->values[2], 1e-12);
}

TEST(LeaveOneOutTest, BudgetIsLinear) {
  TableUtility table = RandomTable(7, 13);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> loo = LeaveOneOut(session);
  ASSERT_TRUE(loo.ok());
  EXPECT_EQ(loo->num_trainings, 8u);
}

}  // namespace
}  // namespace fedshap
