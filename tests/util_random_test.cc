#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform() == b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    // Each bucket should be close to draws/10; allow 10% slack.
    EXPECT_NEAR(c, draws / 10, draws / 100);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(17);
  const int draws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < draws; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / draws;
  const double var = sum_sq / draws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(19);
  const int draws = 100000;
  double sum = 0.0;
  for (int i = 0; i < draws; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / draws, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int successes = 0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    if (rng.Bernoulli(0.3)) ++successes;
  }
  EXPECT_NEAR(successes / static_cast<double>(draws), 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.25, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.75, 0.02);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(31);
  std::vector<int> perm = rng.Permutation(20);
  std::vector<int> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationIsShuffledAcrossDraws) {
  Rng rng(37);
  // At least one of several permutations of size 10 must differ from
  // identity (probability of failure is negligible).
  bool any_shuffled = false;
  for (int t = 0; t < 5; ++t) {
    std::vector<int> perm = rng.Permutation(10);
    for (int i = 0; i < 10; ++i) {
      if (perm[i] != i) any_shuffled = true;
    }
  }
  EXPECT_TRUE(any_shuffled);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  for (int t = 0; t < 100; ++t) {
    std::vector<int> sample = rng.SampleWithoutReplacement(12, 5);
    ASSERT_EQ(sample.size(), 5u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 5u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 12);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(43);
  std::vector<int> sample = rng.SampleWithoutReplacement(6, 6);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 6; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleWithoutReplacementUniformCoverage) {
  Rng rng(47);
  std::vector<int> counts(8, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    for (int v : rng.SampleWithoutReplacement(8, 2)) ++counts[v];
  }
  // Each element appears in a 2-of-8 sample with probability 1/4.
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(draws), 0.25, 0.02);
  }
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(53);
  Rng child_a = parent.Fork();
  Rng child_b = parent.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a.Uniform() == child_b.Uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(59), b(59);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(fa.Uniform(), fb.Uniform());
  }
}

TEST(RngTest, SaveLoadStateResumesIdenticalStream) {
  Rng rng(67);
  // Burn mixed draws, including a Gaussian so the normal distribution's
  // Box-Muller spare is live in the saved state.
  for (int i = 0; i < 7; ++i) {
    rng.Uniform();
    rng.Gaussian();
  }
  const std::string state = rng.SaveState();
  Rng restored(0);
  ASSERT_TRUE(restored.LoadState(state).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.Uniform(), rng.Uniform());
    EXPECT_EQ(restored.Gaussian(), rng.Gaussian());
    EXPECT_EQ(restored.UniformInt(uint64_t{1000}),
              rng.UniformInt(uint64_t{1000}));
  }
}

TEST(RngTest, LoadStateRejectsGarbage) {
  Rng rng(71);
  EXPECT_FALSE(rng.LoadState("not an rng state").ok());
  EXPECT_FALSE(rng.LoadState("").ok());
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(61);
  std::vector<int> items = {5, 5, 1, 2, 9};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(items.begin(), items.end());
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(items, shuffled);
}

}  // namespace
}  // namespace fedshap
