#include "ml/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedshap {
namespace {

Dataset MakeBinary(size_t rows, uint64_t seed, double separation = 4.0) {
  Rng rng(seed);
  Result<Dataset> data = GenerateBlobs(2, 5, separation, rows, rng);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(GbdtTest, FitsSeparableData) {
  Dataset data = MakeBinary(600, 1);
  GbdtConfig config;
  config.num_trees = 15;
  config.max_depth = 3;
  Gbdt booster(config);
  ASSERT_TRUE(booster.Fit(data).ok());
  EXPECT_EQ(booster.num_trees(), 15);
  EXPECT_GT(booster.EvaluateAccuracy(data), 0.95);
}

TEST(GbdtTest, FitOnGatheredViewMatchesFitOnMergedDataset) {
  // The coalition-evaluation path fits a row-pointer view over the
  // member shards; it must produce the *identical* ensemble (same
  // logits everywhere) as fitting the materialized merge — this is what
  // keeps persisted GBDT utilities valid across the gather refactor.
  Dataset a = MakeBinary(150, 31);
  Dataset b = MakeBinary(90, 32);
  Dataset c = MakeBinary(120, 33);
  Result<Dataset> merged = Dataset::Merge({&a, &b, &c});
  ASSERT_TRUE(merged.ok());
  Result<DatasetView> view = DatasetView::Gather({&a, &b, &c});
  ASSERT_TRUE(view.ok());

  GbdtConfig config;
  config.num_trees = 12;
  config.max_depth = 3;
  Gbdt from_merge(config);
  ASSERT_TRUE(from_merge.Fit(*merged).ok());
  Gbdt from_view(config);
  ASSERT_TRUE(from_view.Fit(*view).ok());

  ASSERT_EQ(from_view.num_trees(), from_merge.num_trees());
  Dataset probe = MakeBinary(200, 34);
  std::vector<float> row(static_cast<size_t>(probe.num_features()));
  for (size_t i = 0; i < probe.size(); ++i) {
    probe.CopyRow(i, row.data());
    EXPECT_EQ(from_view.PredictLogit(row.data()),
              from_merge.PredictLogit(row.data()))
        << "row " << i;
  }
}

TEST(GbdtTest, GeneralizesToHeldOut) {
  Dataset train = MakeBinary(800, 2);
  Dataset test = MakeBinary(300, 3);
  GbdtConfig config;
  config.num_trees = 20;
  Gbdt booster(config);
  ASSERT_TRUE(booster.Fit(train).ok());
  EXPECT_GT(booster.EvaluateAccuracy(test), 0.9);
}

TEST(GbdtTest, LearnsNonLinearXor) {
  // XOR of sign(x0), sign(x1): linearly inseparable, tree-friendly.
  Result<Dataset> data = Dataset::Create(2, 2);
  ASSERT_TRUE(data.ok());
  Rng rng(4);
  for (int i = 0; i < 800; ++i) {
    const float x0 = static_cast<float>(rng.Gaussian());
    const float x1 = static_cast<float>(rng.Gaussian());
    const int label = ((x0 > 0) != (x1 > 0)) ? 1 : 0;
    data->Append({x0, x1}, static_cast<float>(label));
  }
  GbdtConfig config;
  config.num_trees = 25;
  config.max_depth = 3;
  Gbdt booster(config);
  ASSERT_TRUE(booster.Fit(*data).ok());
  EXPECT_GT(booster.EvaluateAccuracy(*data), 0.9);
}

TEST(GbdtTest, MoreTreesImproveTrainFit) {
  Dataset data = MakeBinary(500, 5, 1.5);  // overlapping classes
  GbdtConfig small;
  small.num_trees = 2;
  GbdtConfig large;
  large.num_trees = 30;
  Gbdt booster_small(small), booster_large(large);
  ASSERT_TRUE(booster_small.Fit(data).ok());
  ASSERT_TRUE(booster_large.Fit(data).ok());
  EXPECT_GE(booster_large.EvaluateAccuracy(data),
            booster_small.EvaluateAccuracy(data));
}

TEST(GbdtTest, RejectsNonBinaryData) {
  Rng rng(6);
  Result<Dataset> multi = GenerateBlobs(3, 4, 4.0, 100, rng);
  ASSERT_TRUE(multi.ok());
  Gbdt booster(GbdtConfig{});
  EXPECT_FALSE(booster.Fit(*multi).ok());
  RegressionConfig reg;
  Result<Dataset> regression = GenerateRegression(reg, 100, rng);
  ASSERT_TRUE(regression.ok());
  EXPECT_FALSE(booster.Fit(*regression).ok());
}

TEST(GbdtTest, EmptyDatasetYieldsEmptyEnsemble) {
  Result<Dataset> empty = Dataset::Create(3, 2);
  ASSERT_TRUE(empty.ok());
  Gbdt booster(GbdtConfig{});
  ASSERT_TRUE(booster.Fit(*empty).ok());
  EXPECT_EQ(booster.num_trees(), 0);
  const float row[3] = {0, 0, 0};
  EXPECT_DOUBLE_EQ(booster.PredictLogit(row), 0.0);
  EXPECT_DOUBLE_EQ(booster.PredictProbability(row), 0.5);
}

TEST(GbdtTest, PredictionProbabilitiesAreCalibratedSigmoids) {
  Dataset data = MakeBinary(400, 7);
  Gbdt booster(GbdtConfig{});
  ASSERT_TRUE(booster.Fit(data).ok());
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  for (size_t i = 0; i < 20; ++i) {
    data.CopyRow(i, row.data());
    const double p = booster.PredictProbability(row.data());
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    const double logit = booster.PredictLogit(row.data());
    EXPECT_NEAR(p, 1.0 / (1.0 + std::exp(-logit)), 1e-12);
  }
}

TEST(GbdtTest, RefitReplacesEnsemble) {
  Dataset data = MakeBinary(200, 8);
  GbdtConfig config;
  config.num_trees = 5;
  Gbdt booster(config);
  ASSERT_TRUE(booster.Fit(data).ok());
  ASSERT_TRUE(booster.Fit(data).ok());
  EXPECT_EQ(booster.num_trees(), 5);  // not 10
}

TEST(GbdtTest, DeterministicAcrossFits) {
  Dataset data = MakeBinary(300, 9);
  Gbdt a(GbdtConfig{}), b(GbdtConfig{});
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  for (size_t i = 0; i < 10; ++i) {
    data.CopyRow(i, row.data());
    EXPECT_DOUBLE_EQ(a.PredictLogit(row.data()),
                     b.PredictLogit(row.data()));
  }
}

TEST(GbdtTest, MinSamplesLeafLimitsTreeGrowth) {
  Dataset data = MakeBinary(50, 10, 1.0);
  GbdtConfig config;
  config.num_trees = 1;
  config.max_depth = 10;
  config.min_samples_leaf = 25;  // at most one split possible
  Gbdt booster(config);
  ASSERT_TRUE(booster.Fit(data).ok());
  // With min_samples_leaf = half the data, accuracy is still defined and
  // the booster must not crash or loop.
  const double acc = booster.EvaluateAccuracy(data);
  EXPECT_GE(acc, 0.4);
}

TEST(GbdtTest, EvaluateAccuracyOnEmptyTestIsZero) {
  Dataset data = MakeBinary(100, 11);
  Gbdt booster(GbdtConfig{});
  ASSERT_TRUE(booster.Fit(data).ok());
  Result<Dataset> empty = Dataset::Create(5, 2);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(booster.EvaluateAccuracy(*empty), 0.0);
}

}  // namespace
}  // namespace fedshap
