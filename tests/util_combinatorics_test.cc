#include "util/combinatorics.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(BinomialTest, SmallValuesExact) {
  EXPECT_DOUBLE_EQ(BinomialDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(52, 5), 2598960.0);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_DOUBLE_EQ(BinomialDouble(5, -1), 0.0);
  EXPECT_DOUBLE_EQ(BinomialDouble(5, 6), 0.0);
  EXPECT_EQ(BinomialU64(5, -1), 0u);
  EXPECT_EQ(BinomialU64(5, 6), 0u);
}

TEST(BinomialTest, PascalIdentity) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(BinomialDouble(n, k),
                       BinomialDouble(n - 1, k - 1) +
                           BinomialDouble(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, SymmetryIdentity) {
  for (int n = 0; n <= 40; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_DOUBLE_EQ(BinomialDouble(n, k), BinomialDouble(n, n - k));
    }
  }
}

TEST(BinomialTest, RowSumIsPowerOfTwo) {
  for (int n = 0; n <= 20; ++n) {
    double total = 0.0;
    for (int k = 0; k <= n; ++k) total += BinomialDouble(n, k);
    EXPECT_DOUBLE_EQ(total, std::pow(2.0, n));
  }
}

TEST(BinomialTest, U64MatchesDoubleInExactRange) {
  for (int n = 0; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_EQ(static_cast<double>(BinomialU64(n, k)),
                BinomialDouble(n, k));
    }
  }
}

TEST(BinomialTest, U64SaturatesInsteadOfOverflowing) {
  // C(200, 100) greatly exceeds 2^64.
  EXPECT_EQ(BinomialU64(200, 100), std::numeric_limits<uint64_t>::max());
}

TEST(LogFactorialTest, MatchesDirectProducts) {
  double expected = 0.0;
  for (int n = 1; n <= 20; ++n) {
    expected += std::log(static_cast<double>(n));
    EXPECT_NEAR(LogFactorial(n), expected, 1e-9);
  }
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
}

TEST(SubsetsUpToSizeTest, MatchesManualSums) {
  EXPECT_EQ(SubsetsUpToSize(4, 0), 1u);
  EXPECT_EQ(SubsetsUpToSize(4, 1), 5u);
  EXPECT_EQ(SubsetsUpToSize(4, 2), 11u);
  EXPECT_EQ(SubsetsUpToSize(4, 4), 16u);
  EXPECT_EQ(SubsetsUpToSize(10, 10), 1024u);
  // k beyond n clamps at 2^n.
  EXPECT_EQ(SubsetsUpToSize(10, 99), 1024u);
}

TEST(ForEachSubsetOfSizeTest, CountsMatchBinomials) {
  for (int n = 0; n <= 10; ++n) {
    for (int k = 0; k <= n; ++k) {
      size_t count = 0;
      ForEachSubsetOfSize(n, k, [&](const Coalition& c) {
        EXPECT_EQ(c.Count(), k);
        ++count;
      });
      EXPECT_EQ(count, BinomialU64(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ForEachSubsetOfSizeTest, SubsetsAreDistinct) {
  std::set<std::vector<int>> seen;
  ForEachSubsetOfSize(8, 3, [&](const Coalition& c) {
    EXPECT_TRUE(seen.insert(c.Members()).second);
  });
  EXPECT_EQ(seen.size(), 56u);
}

TEST(ForEachSubsetOfSizeTest, InvalidSizesProduceNothing) {
  int count = 0;
  ForEachSubsetOfSize(5, 6, [&](const Coalition&) { ++count; });
  ForEachSubsetOfSize(5, -1, [&](const Coalition&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachSubsetOfTest, EnumeratesPowerSet) {
  Coalition universe = Coalition::Of({2, 5, 9});
  std::set<std::vector<int>> seen;
  ForEachSubsetOf(universe, [&](const Coalition& c) {
    EXPECT_TRUE(c.IsSubsetOf(universe));
    EXPECT_TRUE(seen.insert(c.Members()).second);
  });
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomSubsetTest, SizeAndRangeRespected) {
  Rng rng(5);
  for (int t = 0; t < 200; ++t) {
    Coalition c = RandomSubsetOfSize(9, 4, rng);
    EXPECT_EQ(c.Count(), 4);
    for (int member : c.Members()) {
      EXPECT_GE(member, 0);
      EXPECT_LT(member, 9);
    }
  }
}

TEST(RandomSubsetTest, ApproximatelyUniformOverSets) {
  Rng rng(7);
  // C(5,2) = 10 subsets; each should appear ~1/10 of the time.
  std::map<std::vector<int>, int> counts;
  const int draws = 20000;
  for (int t = 0; t < draws; ++t) {
    counts[RandomSubsetOfSize(5, 2, rng).Members()]++;
  }
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [subset, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(draws), 0.1, 0.015);
  }
}

TEST(RandomSubsetExcludingTest, NeverContainsExcluded) {
  Rng rng(9);
  for (int t = 0; t < 500; ++t) {
    const int excluded = t % 7;
    Coalition c = RandomSubsetOfSizeExcluding(7, 3, excluded, rng);
    EXPECT_EQ(c.Count(), 3);
    EXPECT_FALSE(c.Contains(excluded));
    for (int member : c.Members()) EXPECT_LT(member, 7);
  }
}

TEST(RandomSubsetExcludingTest, CoversAllOtherClients) {
  Rng rng(11);
  std::set<int> seen;
  for (int t = 0; t < 500; ++t) {
    for (int member :
         RandomSubsetOfSizeExcluding(6, 2, 3, rng).Members()) {
      seen.insert(member);
    }
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.count(3), 0u);
}

}  // namespace
}  // namespace fedshap
