#include "core/exact.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/valuation_metrics.h"
#include "test_util.h"

namespace fedshap {
namespace {

using testing_util::MaxAbsDiff;
using testing_util::PaperTableOne;
using testing_util::RandomTable;

ValuationResult RunExactMc(const UtilityFunction& fn) {
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  Result<ValuationResult> result = ExactShapleyMc(session);
  FEDSHAP_CHECK(result.ok());
  return std::move(result).value();
}

TEST(ExactShapleyTest, PaperTableOneExample) {
  // The paper's Example 1: phi = (0.22, 0.32, 0.32).
  TableUtility table = PaperTableOne();
  ValuationResult result = RunExactMc(table);
  ASSERT_EQ(result.values.size(), 3u);
  EXPECT_NEAR(result.values[0], 0.22, 1e-12);
  EXPECT_NEAR(result.values[1], 0.32, 1e-12);
  EXPECT_NEAR(result.values[2], 0.32, 1e-12);
  EXPECT_EQ(result.num_trainings, 8u);  // all 2^3 coalitions
}

TEST(ExactShapleyTest, EfficiencyAxiomOnPaperTable) {
  TableUtility table = PaperTableOne();
  ValuationResult result = RunExactMc(table);
  // sum phi = U(N) - U(empty) = 0.96 - 0.10.
  EXPECT_NEAR(EfficiencyResidual(result.values, 0.96, 0.10), 0.0, 1e-12);
}

TEST(ExactShapleyTest, McAndCcSchemesAgreeOnRandomTables) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (int n = 1; n <= 6; ++n) {
      TableUtility table = RandomTable(n, seed * 100 + n);
      UtilityCache cache(&table);
      UtilitySession mc_session(&cache), cc_session(&cache);
      Result<ValuationResult> mc = ExactShapleyMc(mc_session);
      Result<ValuationResult> cc = ExactShapleyCc(cc_session);
      ASSERT_TRUE(mc.ok());
      ASSERT_TRUE(cc.ok());
      EXPECT_LT(MaxAbsDiff(mc->values, cc->values), 1e-10)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(ExactShapleyTest, PermutationSchemeAgrees) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const int n = 1 + static_cast<int>(seed % 5);
    TableUtility table = RandomTable(n, seed);
    UtilityCache cache(&table);
    UtilitySession mc_session(&cache), perm_session(&cache);
    Result<ValuationResult> mc = ExactShapleyMc(mc_session);
    Result<ValuationResult> perm = ExactShapleyPermutation(perm_session);
    ASSERT_TRUE(mc.ok());
    ASSERT_TRUE(perm.ok());
    EXPECT_LT(MaxAbsDiff(mc->values, perm->values), 1e-10);
  }
}

TEST(ExactShapleyTest, EfficiencyAxiomPropertyOnRandomTables) {
  for (uint64_t seed = 50; seed < 60; ++seed) {
    const int n = 4;
    TableUtility table = RandomTable(n, seed);
    ValuationResult result = RunExactMc(table);
    const double u_full = table.Evaluate(Coalition::Full(n)).value();
    const double u_empty = table.Evaluate(Coalition()).value();
    EXPECT_NEAR(EfficiencyResidual(result.values, u_full, u_empty), 0.0,
                1e-10);
  }
}

TEST(ExactShapleyTest, NullPlayerAxiom) {
  // Client 3 never changes the utility -> phi_3 = 0 (no-free-riders).
  Result<TableUtility> table =
      TableUtility::FromFunction(4, [](const Coalition& c) {
        Coalition without = c.Without(3);
        return 0.2 * without.Count() + 0.05 * without.Contains(0);
      });
  ASSERT_TRUE(table.ok());
  ValuationResult result = RunExactMc(*table);
  EXPECT_NEAR(result.values[3], 0.0, 1e-12);
  EXPECT_GT(result.values[0], 0.0);
}

TEST(ExactShapleyTest, SymmetryAxiom) {
  // Clients 1 and 2 are interchangeable -> equal values.
  Result<TableUtility> table =
      TableUtility::FromFunction(4, [](const Coalition& c) {
        const int count_12 = c.Contains(1) + c.Contains(2);
        return 0.5 * c.Contains(0) + 0.3 * count_12 +
               0.1 * c.Contains(3) * c.Contains(0);
      });
  ASSERT_TRUE(table.ok());
  ValuationResult result = RunExactMc(*table);
  EXPECT_NEAR(result.values[1], result.values[2], 1e-12);
  EXPECT_GT(result.values[0], result.values[1]);
}

TEST(ExactShapleyTest, LinearAdditivityAxiom) {
  // SV is linear in the utility function: phi(U1 + U2) = phi(U1) + phi(U2).
  // This is the mechanism behind the paper's test-dataset additivity.
  const int n = 4;
  TableUtility u1 = RandomTable(n, 7);
  TableUtility u2 = RandomTable(n, 8);
  Result<TableUtility> sum =
      TableUtility::FromFunction(n, [&](const Coalition& c) {
        return u1.Evaluate(c).value() + u2.Evaluate(c).value();
      });
  ASSERT_TRUE(sum.ok());
  ValuationResult r1 = RunExactMc(u1);
  ValuationResult r2 = RunExactMc(u2);
  ValuationResult rs = RunExactMc(*sum);
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(rs.values[i], r1.values[i] + r2.values[i], 1e-10);
  }
}

TEST(ExactShapleyTest, SingleClientGetsAllValue) {
  Result<TableUtility> table = TableUtility::FromFunction(
      1, [](const Coalition& c) { return c.Empty() ? 0.1 : 0.9; });
  ASSERT_TRUE(table.ok());
  ValuationResult result = RunExactMc(*table);
  ASSERT_EQ(result.values.size(), 1u);
  EXPECT_NEAR(result.values[0], 0.8, 1e-12);
}

TEST(ExactShapleyTest, RejectsOversizedInstances) {
  // Permutation variant only supports n <= 8; build a fake 9-client wrapper.
  class Wide : public UtilityFunction {
   public:
    int num_clients() const override { return 9; }
    Result<double> Evaluate(const Coalition&) const override { return 0.0; }
  };
  Wide wide;
  UtilityCache wide_cache(&wide);
  UtilitySession wide_session(&wide_cache);
  EXPECT_FALSE(ExactShapleyPermutation(wide_session).ok());
}

TEST(ExactShapleyTest, CostEstimatesGrowCorrectly) {
  const double tau = 2.0;
  EXPECT_DOUBLE_EQ(EstimateMcShapleySeconds(3, tau), 16.0);
  EXPECT_DOUBLE_EQ(EstimateMcShapleySeconds(10, tau), 2048.0);
  // Perm: n! * n * tau.
  EXPECT_NEAR(EstimatePermShapleySeconds(3, tau), 6 * 3 * 2.0, 1e-9);
  EXPECT_GT(EstimatePermShapleySeconds(10, tau),
            EstimateMcShapleySeconds(10, tau));
}

TEST(ExactShapleyTest, SessionAccountingMatchesCoalitionCount) {
  TableUtility table = RandomTable(5, 3);
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> result = ExactShapleyMc(session);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_trainings, 32u);
  EXPECT_EQ(result->num_evaluations, 32u);
}

TEST(ExactShapleyTest, ParallelSessionMatchesSequential) {
  TableUtility table = RandomTable(8, 11);
  UtilityCache cache(&table);
  ThreadPool pool(4);

  UtilitySession mc_seq(&cache);
  Result<ValuationResult> mc_reference = ExactShapleyMc(mc_seq);
  ASSERT_TRUE(mc_reference.ok());
  UtilitySession mc_par(&cache, &pool);
  Result<ValuationResult> mc_parallel = ExactShapleyMc(mc_par);
  ASSERT_TRUE(mc_parallel.ok());
  EXPECT_EQ(mc_parallel->values, mc_reference->values);
  EXPECT_EQ(mc_parallel->num_evaluations, mc_reference->num_evaluations);
  EXPECT_EQ(mc_parallel->num_trainings, mc_reference->num_trainings);
  EXPECT_DOUBLE_EQ(mc_parallel->charged_seconds,
                   mc_reference->charged_seconds);

  UtilitySession cc_seq(&cache);
  Result<ValuationResult> cc_reference = ExactShapleyCc(cc_seq);
  ASSERT_TRUE(cc_reference.ok());
  UtilitySession cc_par(&cache, &pool);
  Result<ValuationResult> cc_parallel = ExactShapleyCc(cc_par);
  ASSERT_TRUE(cc_parallel.ok());
  EXPECT_EQ(cc_parallel->values, cc_reference->values);
}
}  // namespace
}  // namespace fedshap
