#include "util/status.h"

#include <gtest/gtest.h>

namespace fedshap {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad n");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad n");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad n");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::NotFound("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusDegradesToInternalError) {
  Result<int> result = Status::OK();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

Status FailingFunction() { return Status::Internal("boom"); }

Status PropagatingFunction(bool fail) {
  if (fail) {
    FEDSHAP_RETURN_NOT_OK(FailingFunction());
  }
  return Status::OK();
}

TEST(StatusMacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(PropagatingFunction(false).ok());
  EXPECT_EQ(PropagatingFunction(true).code(), StatusCode::kInternal);
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 7;
}

Result<int> ConsumeValue(bool fail) {
  FEDSHAP_ASSIGN_OR_RETURN(int value, ProduceValue(fail));
  return value + 1;
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = ConsumeValue(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 8);
  Result<int> err = ConsumeValue(true);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace fedshap
