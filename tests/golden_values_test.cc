/// Seeded golden-value regression suite: small synthetic workloads whose
/// expected Shapley vectors (exact and IPSS at fixed seeds) are committed
/// under tests/golden/. A refactor that silently shifts estimates —
/// a changed evaluation order, a perturbed sampler, a different seed
/// derivation — fails here even when every property-based test still
/// holds, because the golden files pin the concrete numbers.
///
/// Regenerating after an *intentional* change:
///
///   ./build/tests/golden_values_test --update-golden
///
/// rewrites every golden file in the source tree; review the diff before
/// committing it. Tolerances (see kTableTol / kTrainedTol): workloads on
/// double-precision table utilities must reproduce to 1e-12; workloads
/// that train float models get 5e-4, absorbing libm/compiler drift across
/// toolchains while still catching any structural change (those move
/// estimates by orders of magnitude more).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/stratified.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/kernel_backend.h"
#include "ml/mlp.h"
#include "test_util.h"
#include "util/logging.h"

namespace fedshap {

/// Set by main() when --update-golden is passed; visible outside the
/// anonymous namespace so main can reach it.
bool g_update_golden = false;

namespace {

constexpr double kTableTol = 1e-12;
constexpr double kTrainedTol = 5e-4;

std::string GoldenPath(const std::string& name) {
  return std::string(FEDSHAP_TEST_SOURCE_DIR) + "/golden/" + name +
         ".golden";
}

/// Golden file format: one "<key> <v0> <v1> ..." line per recorded
/// vector, values printed with %.17g (lossless double round-trip).
using GoldenMap = std::vector<std::pair<std::string, std::vector<double>>>;

void WriteGolden(const std::string& name, const GoldenMap& values) {
  std::ofstream out(GoldenPath(name));
  ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath(name);
  out << "# golden values for " << name << "; regenerate with "
      << "golden_values_test --update-golden\n";
  for (const auto& [key, vec] : values) {
    out << key;
    for (double v : vec) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %.17g", v);
      out << buf;
    }
    out << "\n";
  }
}

GoldenMap ReadGolden(const std::string& name) {
  std::ifstream in(GoldenPath(name));
  EXPECT_TRUE(in.good()) << "missing golden file " << GoldenPath(name)
                         << " — run golden_values_test --update-golden";
  GoldenMap values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream parts(line);
    std::string key;
    parts >> key;
    std::vector<double> vec;
    double v;
    while (parts >> v) vec.push_back(v);
    values.emplace_back(key, std::move(vec));
  }
  return values;
}

/// Checks `actual` against the committed goldens (or rewrites them with
/// --update-golden).
void CheckGolden(const std::string& name, const GoldenMap& actual,
                 double tolerance) {
  if (g_update_golden) {
    WriteGolden(name, actual);
    GTEST_SKIP() << "golden file " << name << " regenerated";
  }
  GoldenMap expected = ReadGolden(name);
  ASSERT_EQ(expected.size(), actual.size()) << name;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << name;
    ASSERT_EQ(expected[i].second.size(), actual[i].second.size())
        << name << " key " << actual[i].first;
    for (size_t j = 0; j < actual[i].second.size(); ++j) {
      EXPECT_NEAR(actual[i].second[j], expected[i].second[j], tolerance)
          << name << " key " << actual[i].first << " element " << j;
    }
  }
}

std::vector<double> ExactValues(const UtilityFunction& fn) {
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  FEDSHAP_CHECK_OK(exact.status());
  return exact->values;
}

std::vector<double> IpssValues(const UtilityFunction& fn, int gamma,
                               uint64_t seed) {
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  IpssConfig config;
  config.total_rounds = gamma;
  config.seed = seed;
  Result<ValuationResult> ipss = IpssShapley(session, config);
  FEDSHAP_CHECK_OK(ipss.status());
  return ipss->values;
}

std::vector<double> AdaptiveValues(const UtilityFunction& fn, int gamma,
                                   uint64_t seed, PairPolicy policy) {
  UtilityCache cache(&fn);
  UtilitySession session(&cache);
  AdaptiveAllocationConfig config;
  config.total_rounds = gamma;
  config.seed = seed;
  config.reallocate_every = 8;
  config.pair_policy = policy;
  Result<ValuationResult> adaptive = AdaptiveStratifiedShapley(session,
                                                               config);
  FEDSHAP_CHECK_OK(adaptive.status());
  return adaptive->values;
}

/// The adaptive (Neyman) stratified estimator at fixed seeds: pins the
/// draw stream, the moment folding and every reallocation decision. Any
/// change to the allocator — a reordered epoch, a different coverage
/// floor, a perturbed sigma estimate — moves these numbers.
TEST(GoldenValues, AdaptiveStratified) {
  GoldenMap actual;
  {
    TableUtility fn = testing_util::MonotoneTable(6);
    actual.emplace_back(
        "monotone6_g30_s11_sampled",
        AdaptiveValues(fn, 30, 11, PairPolicy::kRequireSampled));
    actual.emplace_back(
        "monotone6_g30_s11_ondemand",
        AdaptiveValues(fn, 30, 11, PairPolicy::kEvaluateOnDemand));
  }
  {
    TableUtility fn = testing_util::RandomTable(7, 99);
    actual.emplace_back(
        "random7_g44_s3_sampled",
        AdaptiveValues(fn, 44, 3, PairPolicy::kRequireSampled));
  }
  CheckGolden("adaptive_stratified", actual, kTableTol);
}

TEST(GoldenValues, PaperTableOne) {
  TableUtility fn = testing_util::PaperTableOne();
  GoldenMap actual;
  actual.emplace_back("exact", ExactValues(fn));
  actual.emplace_back("ipss_g5_s2025", IpssValues(fn, 5, 2025));
  CheckGolden("table1", actual, kTableTol);
}

TEST(GoldenValues, MonotoneSixClients) {
  TableUtility fn = testing_util::MonotoneTable(6);
  GoldenMap actual;
  actual.emplace_back("exact", ExactValues(fn));
  actual.emplace_back("ipss_g16_s2025", IpssValues(fn, 16, 2025));
  actual.emplace_back("ipss_g40_s7", IpssValues(fn, 40, 7));
  CheckGolden("monotone6", actual, kTableTol);
}

TEST(GoldenValues, RandomSevenClients) {
  TableUtility fn = testing_util::RandomTable(7, 99);
  GoldenMap actual;
  actual.emplace_back("exact", ExactValues(fn));
  actual.emplace_back("ipss_g24_s7", IpssValues(fn, 24, 7));
  CheckGolden("random7", actual, kTableTol);
}

/// The trained-model workload: a 4-client FedAvg MLP on blob data, run
/// through the default (batched-kernel) training path. This pins the ML
/// substrate's numerics end to end: a change to kernels, batch order,
/// seed mixing or aggregation shifts these values.
TEST(GoldenValues, FedAvgMlpFourClients) {
  Rng rng(321);
  Result<Dataset> pool = GenerateBlobs(3, 6, 3.0, 96, rng);
  ASSERT_TRUE(pool.ok());
  std::vector<Dataset> clients;
  for (int c = 0; c < 4; ++c) {
    std::vector<size_t> idx;
    for (size_t i = c * 16; i < static_cast<size_t>(c + 1) * 16; ++i) {
      idx.push_back(i);
    }
    clients.push_back(pool->Subset(idx));
  }
  std::vector<size_t> test_idx;
  for (size_t i = 64; i < pool->size(); ++i) test_idx.push_back(i);
  Dataset test = pool->Subset(test_idx);

  Mlp prototype(6, 5, 3);
  Rng init(654);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;
  config.local.batch_size = 8;
  config.local.learning_rate = 0.2;
  config.seed = 987;
  Result<std::unique_ptr<FedAvgUtility>> fn =
      FedAvgUtility::Create(std::move(clients), std::move(test), prototype,
                            config, UtilityMetric::kNegativeLoss);
  ASSERT_TRUE(fn.ok());

  GoldenMap actual;
  actual.emplace_back("exact", ExactValues(**fn));
  actual.emplace_back("ipss_g8_s2025", IpssValues(**fn, 8, 2025));
  CheckGolden("fedavg_mlp4", actual, kTrainedTol);
}

}  // namespace
}  // namespace fedshap

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Golden numbers are pinned to the scalar kernel backend: SIMD
  // backends round GEMM reductions differently, and goldens must stay
  // portable across machines with different vector units.
  FEDSHAP_CHECK(
      fedshap::SetKernelBackend(fedshap::KernelBackend::kScalar).ok());
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      fedshap::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
