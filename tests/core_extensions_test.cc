/// Tests for the extension hooks: Neyman allocation for Alg. 1,
/// the Dirichlet partitioner, Rng::Gamma/Dirichlet, and the report writer.

#include <cmath>
#include <cstdio>
#include <numeric>

#include <gtest/gtest.h>

#include "core/exact.h"
#include "core/report.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "test_util.h"

namespace fedshap {
namespace {

TEST(RngGammaTest, MomentsMatchShape) {
  // Gamma(k, 1) has mean k and variance k.
  Rng rng(1);
  for (double shape : {0.5, 1.0, 3.0, 8.0}) {
    const int draws = 40000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < draws; ++i) {
      const double g = rng.Gamma(shape);
      ASSERT_GT(g, 0.0);
      sum += g;
      sum_sq += g * g;
    }
    const double mean = sum / draws;
    const double var = sum_sq / draws - mean * mean;
    EXPECT_NEAR(mean, shape, 0.1 * std::max(1.0, shape)) << shape;
    EXPECT_NEAR(var, shape, 0.15 * std::max(1.0, shape)) << shape;
  }
}

TEST(RngDirichletTest, SimplexAndConcentration) {
  Rng rng(2);
  // Always on the simplex.
  for (int t = 0; t < 100; ++t) {
    std::vector<double> p = rng.Dirichlet(0.5, 6);
    double total = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  // Small alpha concentrates (high max share), large alpha flattens.
  auto mean_max_share = [&](double alpha) {
    double total = 0.0;
    for (int t = 0; t < 400; ++t) {
      std::vector<double> p = rng.Dirichlet(alpha, 8);
      total += *std::max_element(p.begin(), p.end());
    }
    return total / 400;
  };
  EXPECT_GT(mean_max_share(0.05), mean_max_share(50.0) + 0.2);
}

TEST(PartitionDirichletTest, AssignsEveryRowOnce) {
  Rng rng(3);
  Result<Dataset> pool = GenerateBlobs(4, 3, 4.0, 1000, rng);
  ASSERT_TRUE(pool.ok());
  Result<std::vector<Dataset>> clients =
      PartitionDirichlet(*pool, 7, 0.5, rng);
  ASSERT_TRUE(clients.ok());
  size_t total = 0;
  for (const Dataset& c : *clients) total += c.size();
  EXPECT_EQ(total, 1000u);
}

TEST(PartitionDirichletTest, SmallAlphaSkewsLabels) {
  Rng rng(4);
  Result<Dataset> pool = GenerateBlobs(4, 3, 4.0, 4000, rng);
  ASSERT_TRUE(pool.ok());
  auto mean_entropy = [&](double alpha) {
    Rng local(42);
    Result<std::vector<Dataset>> clients =
        PartitionDirichlet(*pool, 4, alpha, local);
    EXPECT_TRUE(clients.ok());
    double entropy = 0.0;
    int counted = 0;
    for (const Dataset& c : *clients) {
      if (c.size() < 10) continue;
      std::vector<size_t> histogram = c.ClassHistogram();
      double h = 0.0;
      for (size_t count : histogram) {
        if (count == 0) continue;
        const double p = static_cast<double>(count) / c.size();
        h -= p * std::log2(p);
      }
      entropy += h;
      ++counted;
    }
    return counted > 0 ? entropy / counted : 0.0;
  };
  // alpha=100 ~ IID (entropy ~ log2(4) = 2); alpha=0.05 ~ 1-2 classes.
  EXPECT_GT(mean_entropy(100.0), 1.9);
  EXPECT_LT(mean_entropy(0.05), 1.3);
}

TEST(PartitionDirichletTest, Validation) {
  Rng rng(5);
  Result<Dataset> pool = GenerateBlobs(2, 3, 4.0, 100, rng);
  ASSERT_TRUE(pool.ok());
  EXPECT_FALSE(PartitionDirichlet(*pool, 0, 0.5, rng).ok());
  EXPECT_FALSE(PartitionDirichlet(*pool, 3, 0.0, rng).ok());
  RegressionConfig reg;
  Result<Dataset> regression = GenerateRegression(reg, 100, rng);
  ASSERT_TRUE(regression.ok());
  EXPECT_FALSE(PartitionDirichlet(*regression, 3, 0.5, rng).ok());
}

TEST(NeymanAllocationTest, SpendsBudgetAndCoversStrata) {
  LinearRegressionUtility::Params params;
  params.num_clients = 5;
  LinearRegressionUtility utility(params);
  UtilityCache cache(&utility);
  UtilitySession session(&cache);
  Result<std::vector<int>> allocation =
      NeymanAllocation(session, 60, 3, 1);
  ASSERT_TRUE(allocation.ok());
  ASSERT_EQ(allocation->size(), 5u);
  int total = std::accumulate(allocation->begin(), allocation->end(), 0);
  // Remaining budget (60 - pilot evals) is fully assigned.
  EXPECT_EQ(total, 60 - 2 * 3 * 5);
}

TEST(NeymanAllocationTest, FavorsHighVarianceStrata) {
  // Noisy linear-regression utility: the deterministic mean jump from
  // stratum 0 -> 1 dominates the marginal variance at stratum 1 because
  // different coalitions there have different members (eta_i differs).
  LinearRegressionUtility::Params params;
  params.num_clients = 6;
  params.noise_scale = 0.02;
  LinearRegressionUtility utility(params);
  UtilityCache cache(&utility);
  UtilitySession session(&cache);
  Result<std::vector<int>> allocation =
      NeymanAllocation(session, 400, 6, 2);
  ASSERT_TRUE(allocation.ok());
  // All strata have noise of similar magnitude; allocation must be
  // positive-total and finite.
  int total = std::accumulate(allocation->begin(), allocation->end(), 0);
  EXPECT_GT(total, 0);
}

TEST(NeymanAllocationTest, Validation) {
  LinearRegressionUtility::Params params;
  params.num_clients = 4;
  LinearRegressionUtility utility(params);
  UtilityCache cache(&utility);
  UtilitySession session(&cache);
  EXPECT_FALSE(NeymanAllocation(session, 100, 1, 1).ok());   // pilot < 2
  EXPECT_FALSE(NeymanAllocation(session, 10, 3, 1).ok());    // budget small
}

TEST(NeymanAllocationTest, FeedsIntoStratifiedSampling) {
  TableUtility table = testing_util::MonotoneTable(5);
  UtilityCache cache(&table);
  UtilitySession alloc_session(&cache);
  Result<std::vector<int>> allocation =
      NeymanAllocation(alloc_session, 80, 2, 3);
  ASSERT_TRUE(allocation.ok());
  StratifiedConfig config;
  config.rounds_per_stratum = *allocation;
  config.seed = 4;
  UtilitySession run_session(&cache);
  Result<ValuationResult> result =
      StratifiedSamplingShapley(run_session, config);
  ASSERT_TRUE(result.ok());
  for (double v : result->values) EXPECT_TRUE(std::isfinite(v));
}

TEST(ValuationReportTest, RenderContainsEverything) {
  TableUtility table = testing_util::PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());

  ValuationReport report("hospitals Q2", exact->values);
  report.Add({"MC-Shapley", *exact, /*exact=*/true});
  ValuationResult approx = *exact;
  approx.values[0] += 0.01;
  report.Add({"IPSS", approx, /*exact=*/false});

  const std::string rendered = report.Render();
  EXPECT_NE(rendered.find("hospitals Q2"), std::string::npos);
  EXPECT_NE(rendered.find("MC-Shapley"), std::string::npos);
  EXPECT_NE(rendered.find("IPSS"), std::string::npos);
  EXPECT_NE(rendered.find("0.22"), std::string::npos);  // a value cell
  EXPECT_NE(rendered.find("error"), std::string::npos);
}

TEST(ValuationReportTest, CsvRoundTrip) {
  TableUtility table = testing_util::PaperTableOne();
  UtilityCache cache(&table);
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  ValuationReport report("csv test", exact->values);
  report.Add({"MC-Shapley", *exact, true});
  const std::string path =
      ::testing::TempDir() + "/fedshap_report_test.csv";
  ASSERT_TRUE(report.WriteCsv(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buffer[256];
  ASSERT_NE(std::fgets(buffer, sizeof(buffer), f), nullptr);
  EXPECT_NE(std::string(buffer).find("algorithm"), std::string::npos);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ValuationReportTest, NoGroundTruthOmitsErrorColumns) {
  ValuationResult result;
  result.values = {0.1, 0.2};
  ValuationReport report("no truth", {});
  report.Add({"IPSS", result, false});
  const std::string rendered = report.Render();
  EXPECT_EQ(rendered.find("error"), std::string::npos);
  EXPECT_NE(rendered.find("IPSS"), std::string::npos);
}

}  // namespace
}  // namespace fedshap
