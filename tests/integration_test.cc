/// End-to-end integration tests: the full pipeline the benches use —
/// generate federated data, build the utility, compute ground truth,
/// run every valuation algorithm, and compare quality/cost. Sized to stay
/// fast (tiny models, few rounds) while exercising every module together.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/cc_shapley.h"
#include "baselines/dig_fl.h"
#include "baselines/extended_gtb.h"
#include "baselines/extended_tmc.h"
#include "baselines/gtg_shapley.h"
#include "baselines/lambda_mr.h"
#include "baselines/or_baseline.h"
#include "core/exact.h"
#include "core/ipss.h"
#include "core/kgreedy.h"
#include "core/stratified.h"
#include "core/valuation_metrics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/reconstruction.h"
#include "ml/logistic_regression.h"
#include "ml/mlp.h"
#include "util/logging.h"

namespace fedshap {
namespace {

/// Builds a 5-client FedAvg utility over writer-partitioned digits with one
/// planted free rider (client 4 holds no data).
std::unique_ptr<FedAvgUtility> BuildScenario() {
  DigitsConfig digits;
  digits.image_size = 6;  // 36 features: fast
  digits.num_classes = 4;
  digits.num_writers = 8;
  digits.pixel_noise = 0.25;
  Rng rng(2024);
  Result<FederatedSource> source = GenerateDigits(digits, 900, rng);
  FEDSHAP_CHECK(source.ok());

  // Hold out a test set.
  auto [train_data, test_data] = source->data.Split(0.7, rng);
  FederatedSource train_source;
  train_source.data = std::move(train_data);
  // Regenerate group ids for the split by reusing writer count modulo: the
  // natural partition only needs *some* grouping, so re-partition by rows.
  PartitionConfig part;
  part.scheme = PartitionScheme::kDiffSizeSameDist;
  part.num_clients = 4;
  Result<std::vector<Dataset>> clients =
      PartitionDataset(train_source.data, part, rng);
  FEDSHAP_CHECK(clients.ok());
  std::vector<Dataset> all_clients = std::move(clients).value();
  // Client 4: planted free rider with an empty dataset.
  Result<Dataset> empty = Dataset::Create(36, 4);
  FEDSHAP_CHECK(empty.ok());
  all_clients.push_back(std::move(empty).value());

  LogisticRegression prototype(36, 4);
  Rng init(7);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;
  config.local.batch_size = 16;
  config.local.learning_rate = 0.25;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(all_clients), std::move(test_data), prototype, config);
  FEDSHAP_CHECK(utility.ok());
  return std::move(utility).value();
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    utility_ = BuildScenario().release();
    cache_ = new UtilityCache(utility_);
    UtilitySession session(cache_);
    Result<ValuationResult> exact = ExactShapleyMc(session);
    FEDSHAP_CHECK(exact.ok());
    exact_ = new std::vector<double>(exact->values);
  }
  static void TearDownTestSuite() {
    delete exact_;
    delete cache_;
    delete utility_;
    exact_ = nullptr;
    cache_ = nullptr;
    utility_ = nullptr;
  }

  static FedAvgUtility* utility_;
  static UtilityCache* cache_;
  static std::vector<double>* exact_;
};

FedAvgUtility* EndToEnd::utility_ = nullptr;
UtilityCache* EndToEnd::cache_ = nullptr;
std::vector<double>* EndToEnd::exact_ = nullptr;

TEST_F(EndToEnd, GroundTruthSanity) {
  ASSERT_EQ(exact_->size(), 5u);
  // Free rider (client 4) is worth ~0; FedAvg with no data never uploads.
  EXPECT_NEAR((*exact_)[4], 0.0, 1e-9);
  // Data sizes grow 1:2:3:4 across clients 0..3, so client 3 should be
  // worth more than client 0.
  EXPECT_GT((*exact_)[3], (*exact_)[0]);
  // Efficiency.
  const double u_full =
      cache_->Get(Coalition::Full(5)).value().utility;
  const double u_empty = cache_->Get(Coalition()).value().utility;
  EXPECT_NEAR(EfficiencyResidual(*exact_, u_full, u_empty), 0.0, 1e-9);
}

TEST_F(EndToEnd, IpssClosestAtSharedBudget) {
  const int gamma = 16;  // of 32 possible coalitions
  UtilitySession ipss_session(cache_);
  IpssConfig ipss_config;
  ipss_config.total_rounds = gamma;
  Result<ValuationResult> ipss = IpssShapley(ipss_session, ipss_config);
  ASSERT_TRUE(ipss.ok());
  const double ipss_error = RelativeL2Error(*exact_, ipss->values);
  EXPECT_LT(ipss_error, 0.5);
  // IPSS assigns the free rider ~0 (it is covered by the exhaustive
  // strata).
  EXPECT_NEAR(ipss->values[4], 0.0, 0.02);
}

TEST_F(EndToEnd, SamplersApproximateGroundTruth) {
  UtilitySession tmc_session(cache_);
  ExtendedTmcConfig tmc_config;
  tmc_config.permutations = 60;
  tmc_config.truncation_tolerance = 0.0;
  Result<ValuationResult> tmc = ExtendedTmcShapley(tmc_session, tmc_config);
  ASSERT_TRUE(tmc.ok());
  EXPECT_LT(RelativeL2Error(*exact_, tmc->values), 0.6);

  UtilitySession cc_session(cache_);
  CcShapleyConfig cc_config;
  cc_config.rounds = 60;
  Result<ValuationResult> cc = CcShapley(cc_session, cc_config);
  ASSERT_TRUE(cc.ok());
  EXPECT_LT(RelativeL2Error(*exact_, cc->values), 1.0);

  UtilitySession gtb_session(cache_);
  ExtendedGtbConfig gtb_config;
  gtb_config.samples = 60;
  Result<ValuationResult> gtb = ExtendedGtbShapley(gtb_session, gtb_config);
  ASSERT_TRUE(gtb.ok());
  // GTB is the loosest sampler here; the paper reports errors up to ~2.
  EXPECT_LT(RelativeL2Error(*exact_, gtb->values), 2.5);
}

TEST_F(EndToEnd, KGreedyCapturesValueWithSmallK) {
  UtilitySession session(cache_);
  Result<ValuationResult> kg = KGreedyShapley(session, 2);
  ASSERT_TRUE(kg.ok());
  EXPECT_LT(RelativeL2Error(*exact_, kg->values), 0.6);
  EXPECT_GT(SpearmanCorrelation(*exact_, kg->values), 0.7);
}

TEST_F(EndToEnd, StratifiedFrameworkBothSchemesRun) {
  for (SvScheme scheme :
       {SvScheme::kMarginal, SvScheme::kComplementary}) {
    UtilitySession session(cache_);
    StratifiedConfig config;
    config.scheme = scheme;
    config.total_rounds = 20;
    config.seed = 99;
    Result<ValuationResult> result =
        StratifiedSamplingShapley(session, config);
    ASSERT_TRUE(result.ok()) << SvSchemeName(scheme);
    for (double v : result->values) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_F(EndToEnd, GradientBaselinesEndToEnd) {
  Result<std::unique_ptr<ReconstructionContext>> context =
      ReconstructionContext::Create(*utility_);
  ASSERT_TRUE(context.ok());

  Result<ValuationResult> or_result = OrShapley(**context);
  ASSERT_TRUE(or_result.ok());
  Result<ValuationResult> mr = LambdaMrShapley(**context, LambdaMrConfig{});
  ASSERT_TRUE(mr.ok());
  GtgShapleyConfig gtg_config;
  gtg_config.max_permutations_per_round = 6;
  Result<ValuationResult> gtg = GtgShapley(**context, gtg_config);
  ASSERT_TRUE(gtg.ok());
  Result<ValuationResult> dig = DigFlShapley(**context);
  ASSERT_TRUE(dig.ok());

  // All methods identify the free rider as (near-)worthless: client 4
  // never contributes an update.
  EXPECT_NEAR(or_result->values[4], 0.0, 1e-6);
  EXPECT_NEAR(mr->values[4], 0.0, 1e-6);
  EXPECT_NEAR(gtg->values[4], 0.0, 1e-6);
  EXPECT_NEAR(dig->values[4], 0.0, 1e-9);
}

TEST_F(EndToEnd, ChargedCostOrderingMatchesBudgets) {
  // At matched gamma, CC-Shapley trains ~2x the coalitions of IPSS; its
  // charged time must be at least comparable. (Uses training counts, which
  // are deterministic, rather than wall time.)
  const int gamma = 12;
  UtilitySession ipss_session(cache_);
  IpssConfig ipss_config;
  ipss_config.total_rounds = gamma;
  Result<ValuationResult> ipss = IpssShapley(ipss_session, ipss_config);
  ASSERT_TRUE(ipss.ok());

  UtilitySession cc_session(cache_);
  CcShapleyConfig cc_config;
  cc_config.rounds = gamma;
  Result<ValuationResult> cc = CcShapley(cc_session, cc_config);
  ASSERT_TRUE(cc.ok());

  EXPECT_LE(ipss->num_trainings, static_cast<size_t>(gamma));
  EXPECT_GT(cc->num_evaluations, ipss->num_trainings);
}

TEST_F(EndToEnd, MlpUtilityPipelineWorks) {
  // Same pipeline with the MLP model: a smaller smoke version.
  Rng rng(55);
  Result<Dataset> pool = GenerateBlobs(3, 8, 4.0, 600, rng);
  ASSERT_TRUE(pool.ok());
  auto [train, test] = pool->Split(0.7, rng);
  PartitionConfig part;
  part.num_clients = 3;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  ASSERT_TRUE(clients.ok());
  Mlp prototype(8, 8, 3);
  Rng init(66);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 2;
  config.local.learning_rate = 0.2;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients).value(), std::move(test), prototype, config);
  ASSERT_TRUE(utility.ok());
  UtilityCache cache(utility->get());
  UtilitySession session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(session);
  ASSERT_TRUE(exact.ok());
  double total = 0.0;
  for (double v : exact->values) total += v;
  EXPECT_GT(total, 0.0);  // training on blobs adds utility
}

}  // namespace
}  // namespace fedshap
