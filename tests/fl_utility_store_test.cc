/// Tests for fl/utility_store.h: open/flush/reopen round-trips (empty and
/// large stores), fingerprint mismatch rejection, corruption rejection,
/// coalition codec edge cases, and the UtilityCache write-through /
/// preload integration.

#include "fl/utility_store.h"

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace fedshap {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "fedshap_store_" + name;
}

/// Counts underlying evaluations to verify cross-process reuse.
class CountingUtility : public UtilityFunction {
 public:
  explicit CountingUtility(int n) : n_(n) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<double>(coalition.Count()) * 0.125;
  }
  int calls() const { return calls_.load(); }

 private:
  int n_;
  mutable std::atomic<int> calls_{0};
};

TEST(CoalitionCodecTest, RoundTripsEdgeCoalitions) {
  const std::vector<Coalition> cases = {
      Coalition(), Coalition::Of({0}), Coalition::Of({255}),
      Coalition::Of({0, 1, 2, 63, 64, 127, 128, 255}),
      Coalition::Full(100)};
  ByteWriter writer;
  for (const Coalition& c : cases) PutCoalition(writer, c);
  ByteReader reader(writer.bytes());
  for (const Coalition& c : cases) {
    Result<Coalition> read = GetCoalition(reader);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, c);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CoalitionCodecTest, RejectsOutOfRangeMembers) {
  ByteWriter writer;
  writer.PutVarint(1);
  writer.PutVarint(256);  // member index 256 >= kMaxClients
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(GetCoalition(reader).ok());
}

TEST(UtilityStoreTest, OpensEmptyWhenFileMissing) {
  const std::string path = TempPath("missing.fsus");
  std::remove(path.c_str());
  Result<std::unique_ptr<UtilityStore>> store =
      UtilityStore::Open(path, 42);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 0u);
  EXPECT_EQ((*store)->loaded_entries(), 0u);
  EXPECT_FALSE((*store)->dirty());
  // Nothing flushed yet: the file still does not exist.
  EXPECT_TRUE((*store)->Flush().ok());
  EXPECT_FALSE(ReadFileToString(path).ok());
}

TEST(UtilityStoreTest, PutFlushReopenRoundTrip) {
  const std::string path = TempPath("roundtrip.fsus");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 7);
    ASSERT_TRUE(store.ok());
    (*store)->Put(Coalition::Of({0, 2}), {0.75, 1.5});
    (*store)->Put(Coalition(), {0.1, 0.0});
    EXPECT_TRUE((*store)->dirty());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_FALSE((*store)->dirty());
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 7);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 2u);
  EXPECT_EQ((*reopened)->loaded_entries(), 2u);
  UtilityRecord record;
  ASSERT_TRUE((*reopened)->Lookup(Coalition::Of({0, 2}), &record));
  EXPECT_DOUBLE_EQ(record.utility, 0.75);
  EXPECT_DOUBLE_EQ(record.cost_seconds, 1.5);
  ASSERT_TRUE((*reopened)->Lookup(Coalition(), &record));
  EXPECT_DOUBLE_EQ(record.utility, 0.1);
  EXPECT_FALSE((*reopened)->Lookup(Coalition::Of({1}), nullptr));
  std::remove(path.c_str());
}

TEST(UtilityStoreTest, LargeStoreRoundTrip) {
  const std::string path = TempPath("large.fsus");
  std::remove(path.c_str());
  Rng rng(99);
  std::vector<std::pair<Coalition, UtilityRecord>> entries;
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 1);
    ASSERT_TRUE(store.ok());
    for (int j = 0; j < 5000; ++j) {
      Coalition c;
      for (int i = 0; i < 200; ++i) {
        if (rng.Bernoulli(0.3)) c.Add(i);
      }
      UtilityRecord record{rng.Uniform(-1.0, 1.0), rng.Uniform()};
      (*store)->Put(c, record);
      entries.emplace_back(c, record);
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  for (const auto& [coalition, record] : entries) {
    UtilityRecord read;
    ASSERT_TRUE((*reopened)->Lookup(coalition, &read));
    EXPECT_DOUBLE_EQ(read.utility, record.utility);
    EXPECT_DOUBLE_EQ(read.cost_seconds, record.cost_seconds);
  }
  std::remove(path.c_str());
}

TEST(UtilityStoreTest, FingerprintMismatchRejected) {
  const std::string path = TempPath("fingerprint.fsus");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 1111);
    ASSERT_TRUE(store.ok());
    (*store)->Put(Coalition::Of({0}), {0.5, 0.1});
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::unique_ptr<UtilityStore>> wrong =
      UtilityStore::Open(path, 2222);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(UtilityStoreTest, CorruptedAndTruncatedFilesRejected) {
  const std::string path = TempPath("corrupt.fsus");
  std::remove(path.c_str());
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 5);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      (*store)->Put(Coalition::Of({i}), {0.1 * i, 0.0});
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::string> contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());

  // Flip one payload byte: checksum must catch it.
  std::string corrupted = *contents;
  corrupted[corrupted.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteFileAtomic(path, corrupted).ok());
  EXPECT_EQ(UtilityStore::Open(path, 5).status().code(),
            StatusCode::kInvalidArgument);

  // Truncate mid-entry (a torn write that bypassed the atomic rename).
  ASSERT_TRUE(
      WriteFileAtomic(path, contents->substr(0, contents->size() - 7))
          .ok());
  EXPECT_FALSE(UtilityStore::Open(path, 5).ok());

  // Not a store file at all.
  ASSERT_TRUE(WriteFileAtomic(path, "definitely not a store").ok());
  EXPECT_FALSE(UtilityStore::Open(path, 5).ok());
  std::remove(path.c_str());
}

TEST(UtilityStoreTest, StemPathEncodesFingerprint) {
  EXPECT_EQ(UtilityStore::StemPath("/tmp/x", 0xabcULL),
            "/tmp/x.0000000000000abc.fsus");
  EXPECT_NE(UtilityStore::StemPath("/tmp/x", 1),
            UtilityStore::StemPath("/tmp/x", 2));
}

TEST(UtilityCacheStoreTest, WriteThroughAndCrossProcessReuse) {
  const std::string path = TempPath("integration.fsus");
  std::remove(path.c_str());
  CountingUtility fn(6);
  const uint64_t fingerprint = fn.Fingerprint();

  // "Process 1": computes five utilities, each flushed as it lands.
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    UtilityCache cache(&fn);
    cache.AttachStore(store->get(), /*flush_every=*/1);
    UtilitySession session(&cache);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session.Evaluate(Coalition::Of({i})).ok());
    }
    EXPECT_EQ(fn.calls(), 5);
    EXPECT_FALSE((*store)->dirty());  // flush_every=1 persisted everything
  }

  // "Process 2": a fresh cache preloads the store; repeated coalitions
  // cost no new trainings and are charged their recorded costs.
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->loaded_entries(), 5u);
    UtilityCache cache(&fn);
    cache.AttachStore(store->get());
    EXPECT_EQ(cache.preloaded(), 5u);
    EXPECT_EQ(cache.size(), 5u);
    UtilitySession session(&cache);
    for (int i = 0; i < 5; ++i) {
      Result<double> u = session.Evaluate(Coalition::Of({i}));
      ASSERT_TRUE(u.ok());
      EXPECT_DOUBLE_EQ(*u, 0.125);
    }
    EXPECT_EQ(fn.calls(), 5);  // no re-training across "processes"
    EXPECT_EQ(cache.hits(), 5u);
    EXPECT_EQ(cache.misses(), 0u);
    // A genuinely new coalition still computes and persists.
    ASSERT_TRUE(session.Evaluate(Coalition::Of({0, 1})).ok());
    EXPECT_EQ(fn.calls(), 6);
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->loaded_entries(), 6u);
  }
  std::remove(path.c_str());
}

TEST(UtilityFingerprintTest, DistinguishesWorkloads) {
  LinearRegressionUtility::Params params;
  LinearRegressionUtility a(params);
  LinearRegressionUtility same(params);
  params.samples_per_client += 1;
  LinearRegressionUtility different(params);
  EXPECT_EQ(a.Fingerprint(), same.Fingerprint());
  EXPECT_NE(a.Fingerprint(), different.Fingerprint());

  TableUtility table_a = testing_util::PaperTableOne();
  TableUtility table_b = testing_util::RandomTable(3, 1);
  EXPECT_NE(table_a.Fingerprint(), table_b.Fingerprint());
  EXPECT_EQ(table_a.Fingerprint(),
            testing_util::PaperTableOne().Fingerprint());
}

}  // namespace
}  // namespace fedshap
