/// Tests for fl/utility_store.h: open/flush/reopen round-trips across the
/// segment layout, torn-tail truncation, manifest/stray-segment crash
/// recovery, v1->v2 migration, compaction, byte-budget eviction, coalition
/// codec edge cases, and the UtilityCache read-through/write-through
/// integration.

#include "fl/utility_store.h"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/random.h"

namespace fedshap {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test store path: removes any leftover file *or* directory
/// from a previous run (std::remove cannot delete segment directories).
std::string TempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "fedshap_store_" + name;
  fs::remove_all(path);
  return path;
}

std::string ActiveSegmentPath(const std::string& store, uint64_t id) {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.seg",
                static_cast<unsigned long long>(id));
  return store + "/" + name;
}

/// Counts underlying evaluations to verify cross-process reuse.
class CountingUtility : public UtilityFunction {
 public:
  explicit CountingUtility(int n) : n_(n) {}
  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return static_cast<double>(coalition.Count()) * 0.125;
  }
  int calls() const { return calls_.load(); }

 private:
  int n_;
  mutable std::atomic<int> calls_{0};
};

TEST(CoalitionCodecTest, RoundTripsEdgeCoalitions) {
  const std::vector<Coalition> cases = {
      Coalition(), Coalition::Of({0}), Coalition::Of({255}),
      Coalition::Of({0, 1, 2, 63, 64, 127, 128, 255}),
      Coalition::Full(100)};
  ByteWriter writer;
  for (const Coalition& c : cases) PutCoalition(writer, c);
  ByteReader reader(writer.bytes());
  for (const Coalition& c : cases) {
    Result<Coalition> read = GetCoalition(reader);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(*read, c);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(CoalitionCodecTest, RejectsOutOfRangeMembers) {
  ByteWriter writer;
  writer.PutVarint(1);
  writer.PutVarint(256);  // member index 256 >= kMaxClients
  ByteReader reader(writer.bytes());
  EXPECT_FALSE(GetCoalition(reader).ok());
}

TEST(UtilityStoreTest, OpensEmptyWhenFileMissing) {
  const std::string path = TempPath("missing.fsus");
  Result<std::unique_ptr<UtilityStore>> store =
      UtilityStore::Open(path, 42);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 0u);
  EXPECT_EQ((*store)->loaded_entries(), 0u);
  EXPECT_FALSE((*store)->dirty());
  // Nothing written yet: the store directory is created lazily on Put.
  EXPECT_TRUE((*store)->Flush().ok());
  EXPECT_FALSE(fs::exists(path));
}

TEST(UtilityStoreTest, PutFlushReopenRoundTrip) {
  const std::string path = TempPath("roundtrip.fsus");
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 7);
    ASSERT_TRUE(store.ok());
    EXPECT_GT((*store)->Put(Coalition::Of({0, 2}), {0.75, 1.5}), 0u);
    EXPECT_GT((*store)->Put(Coalition(), {0.1, 0.0}), 0u);
    EXPECT_TRUE((*store)->dirty());
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_FALSE((*store)->dirty());
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 7);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 2u);
  EXPECT_EQ((*reopened)->loaded_entries(), 2u);
  UtilityRecord record;
  ASSERT_TRUE((*reopened)->Lookup(Coalition::Of({0, 2}), &record));
  EXPECT_DOUBLE_EQ(record.utility, 0.75);
  EXPECT_DOUBLE_EQ(record.cost_seconds, 1.5);
  ASSERT_TRUE((*reopened)->Lookup(Coalition(), &record));
  EXPECT_DOUBLE_EQ(record.utility, 0.1);
  EXPECT_FALSE((*reopened)->Lookup(Coalition::Of({1}), nullptr));
}

TEST(UtilityStoreTest, LargeStoreRoundTripAcrossSegments) {
  const std::string path = TempPath("large.fsus");
  Rng rng(99);
  std::vector<std::pair<Coalition, UtilityRecord>> entries;
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 1);
    ASSERT_TRUE(store.ok());
    // Small rotation size: the 5000 records span many sealed segments,
    // so the reopen below exercises footer indexing and the manifest.
    (*store)->set_segment_target_bytes(16 * 1024);
    for (int j = 0; j < 5000; ++j) {
      Coalition c;
      for (int i = 0; i < 200; ++i) {
        if (rng.Bernoulli(0.3)) c.Add(i);
      }
      UtilityRecord record{rng.Uniform(-1.0, 1.0), rng.Uniform()};
      (*store)->Put(c, record);
      entries.emplace_back(c, record);
    }
    ASSERT_TRUE((*store)->Flush().ok());
    EXPECT_GT((*store)->stats().sealed_segments, 1u);
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 1);
  ASSERT_TRUE(reopened.ok());
  for (const auto& [coalition, record] : entries) {
    UtilityRecord read;
    ASSERT_TRUE((*reopened)->Lookup(coalition, &read));
    EXPECT_DOUBLE_EQ(read.utility, record.utility);
    EXPECT_DOUBLE_EQ(read.cost_seconds, record.cost_seconds);
  }
}

TEST(UtilityStoreTest, FingerprintMismatchRejected) {
  const std::string path = TempPath("fingerprint.fsus");
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 1111);
    ASSERT_TRUE(store.ok());
    (*store)->Put(Coalition::Of({0}), {0.5, 0.1});
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::unique_ptr<UtilityStore>> wrong =
      UtilityStore::Open(path, 2222);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);
}

TEST(UtilityStoreTest, TornActiveTailTruncatedOnOpen) {
  const std::string path = TempPath("torn.fsus");
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 5);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      (*store)->Put(Coalition::Of({i}), {0.1 * i, 0.0});
    }
    ASSERT_TRUE((*store)->Flush().ok());
  }
  const std::string active = ActiveSegmentPath(path, 1);
  Result<std::string> contents = ReadFileToString(active);
  ASSERT_TRUE(contents.ok());

  // A crash mid-append leaves a torn record at the tail: garbage framing
  // bytes. Open must truncate it and keep every complete record.
  {
    std::FILE* f = std::fopen(active.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite("XXXXX", 1, 5, f);
    std::fclose(f);
  }
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 5);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->size(), 10u);
    UtilityRecord record;
    ASSERT_TRUE((*store)->Lookup(Coalition::Of({9}), &record));
    EXPECT_DOUBLE_EQ(record.utility, 0.9);
  }

  // A tail truncated *inside* the last record loses exactly that record;
  // the store stays open for business and appends resume cleanly.
  ASSERT_TRUE(
      WriteFileAtomic(active, contents->substr(0, contents->size() - 7))
          .ok());
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 5);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->size(), 9u);
    EXPECT_FALSE((*store)->Lookup(Coalition::Of({9}), nullptr));
    (*store)->Put(Coalition::Of({0, 9}), {4.5, 0.0});
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 5);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 10u);
  UtilityRecord record;
  ASSERT_TRUE((*reopened)->Lookup(Coalition::Of({0, 9}), &record));
  EXPECT_DOUBLE_EQ(record.utility, 4.5);
}

TEST(UtilityStoreTest, CorruptManifestAndNonStoreFilesRejected) {
  const std::string path = TempPath("corrupt.fsus");
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 5);
    ASSERT_TRUE(store.ok());
    (*store)->Put(Coalition::Of({1}), {0.5, 0.0});
    ASSERT_TRUE((*store)->Flush().ok());
  }
  ASSERT_TRUE(WriteFileAtomic(path + "/MANIFEST", "garbage bytes").ok());
  EXPECT_FALSE(UtilityStore::Open(path, 5).ok());

  // A regular file that is neither a v1 store nor a segment directory.
  fs::remove_all(path);
  ASSERT_TRUE(WriteFileAtomic(path, "definitely not a store").ok());
  EXPECT_FALSE(UtilityStore::Open(path, 5).ok());
}

TEST(UtilityStoreTest, MigratesV1FileBitIdentically) {
  const std::string path = TempPath("migrate.fsus");
  const uint64_t fingerprint = 0xfeedbeefULL;
  // Synthesize a legacy v1 single-file store: framed fingerprint + count
  // + (coalition, utility, cost) triples.
  const std::vector<std::pair<Coalition, UtilityRecord>> entries = {
      {Coalition(), {0.015625, 1.0}},
      {Coalition::Of({0}), {-0.25, 2.5}},
      {Coalition::Of({1, 3, 200}), {0.7071067811865476, 0.125}},
      {Coalition::Full(30), {-1e-300, 3600.0}},
  };
  ByteWriter writer;
  writer.PutU64(fingerprint);
  writer.PutVarint(entries.size());
  for (const auto& [coalition, record] : entries) {
    PutCoalition(writer, coalition);
    writer.PutDouble(record.utility);
    writer.PutDouble(record.cost_seconds);
  }
  ASSERT_TRUE(
      WriteFileAtomic(path, EncodeFramed(UtilityStore::kMagic,
                                         /*version=*/1, writer.bytes()))
          .ok());

  // Open migrates in place: the path becomes a segment directory and
  // every record survives bit-identically.
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE(fs::is_directory(path));
    EXPECT_EQ((*store)->loaded_entries(), entries.size());
    for (const auto& [coalition, record] : entries) {
      UtilityRecord read;
      ASSERT_TRUE((*store)->Lookup(coalition, &read));
      EXPECT_DOUBLE_EQ(read.utility, record.utility);
      EXPECT_DOUBLE_EQ(read.cost_seconds, record.cost_seconds);
    }
    // The migrated store accepts appends like any other.
    (*store)->Put(Coalition::Of({7}), {9.0, 0.0});
    ASSERT_TRUE((*store)->Flush().ok());
  }
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, fingerprint);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), entries.size() + 1);

  // A v1 file with the wrong fingerprint refuses to migrate.
  const std::string other = TempPath("migrate_wrong.fsus");
  ASSERT_TRUE(
      WriteFileAtomic(other, EncodeFramed(UtilityStore::kMagic,
                                          /*version=*/1, writer.bytes()))
          .ok());
  EXPECT_EQ(UtilityStore::Open(other, 0xdeadULL).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(UtilityStoreTest, CompactionMergesSegmentsAndDropsDuplicates) {
  const std::string path = TempPath("compact.fsus");
  Result<std::unique_ptr<UtilityStore>> store =
      UtilityStore::Open(path, 11);
  ASSERT_TRUE(store.ok());
  (*store)->set_segment_target_bytes(4096);
  // Every coalition written twice: the second value supersedes the first
  // and compaction reclaims the dead bytes.
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 150; ++i) {
      Coalition c = Coalition::Of({i % 100, 100 + i / 100});
      (*store)->Put(c, {static_cast<double>(i + pass * 1000), 0.0});
    }
  }
  ASSERT_TRUE((*store)->CompactNow().ok());
  UtilityStoreStats stats = (*store)->stats();
  EXPECT_EQ(stats.entries, 150u);
  EXPECT_EQ(stats.sealed_segments, 1u);
  EXPECT_GE(stats.compactions, 1u);
  for (int i = 0; i < 150; ++i) {
    Coalition c = Coalition::Of({i % 100, 100 + i / 100});
    UtilityRecord read;
    ASSERT_TRUE((*store)->Lookup(c, &read));
    EXPECT_DOUBLE_EQ(read.utility, static_cast<double>(i + 1000));
  }
  store->reset();
  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 11);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 150u);
  UtilityRecord read;
  ASSERT_TRUE((*reopened)->Lookup(Coalition::Of({0, 100}), &read));
  EXPECT_DOUBLE_EQ(read.utility, 1000.0);
}

TEST(UtilityStoreTest, CompactionKilledMidSwapRecoversFromOldManifest) {
  const std::string path = TempPath("killswap.fsus");
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, 13);
    ASSERT_TRUE(store.ok());
    (*store)->set_segment_target_bytes(4096);
    for (int i = 0; i < 300; ++i) {
      (*store)->Put(Coalition::Of({i % 100, 100 + i / 100}),
                    {static_cast<double>(i), 0.0});
    }
    ASSERT_TRUE((*store)->Flush().ok());
    ASSERT_GE((*store)->stats().sealed_segments, 1u);
  }
  // Simulate a compaction killed after writing its merged segment but
  // before the manifest swap: a stray sealed file not in the manifest.
  const std::string stray = ActiveSegmentPath(path, 99);
  fs::copy_file(ActiveSegmentPath(path, 1), stray);
  ASSERT_TRUE(fs::exists(stray));

  Result<std::unique_ptr<UtilityStore>> reopened =
      UtilityStore::Open(path, 13);
  ASSERT_TRUE(reopened.ok());
  // The old manifest stays authoritative: every record intact, the
  // half-finished merge segment deleted.
  EXPECT_EQ((*reopened)->size(), 300u);
  EXPECT_FALSE(fs::exists(stray));
  UtilityRecord read;
  ASSERT_TRUE((*reopened)->Lookup(Coalition::Of({5, 100}), &read));
  EXPECT_DOUBLE_EQ(read.utility, 5.0);
}

TEST(UtilityStoreTest, ByteBudgetEvictsColdSegmentsButServesEverything) {
  const std::string path = TempPath("evict.fsus");
  Result<std::unique_ptr<UtilityStore>> store =
      UtilityStore::Open(path, 17);
  ASSERT_TRUE(store.ok());
  (*store)->set_segment_target_bytes(4096);
  // Stay under kCompactMinSegments sealed segments so background
  // compaction does not merge away the eviction candidates.
  std::vector<Coalition> coalitions;
  for (int i = 0; i < 450 && (*store)->stats().sealed_segments < 3; ++i) {
    Coalition c = Coalition::Of({i % 100, 100 + i / 100});
    (*store)->Put(c, {static_cast<double>(i), 0.0});
    coalitions.push_back(c);
  }
  ASSERT_TRUE((*store)->Flush().ok());
  ASSERT_GE((*store)->stats().sealed_segments, 2u);

  // Budget fits roughly one segment: lookups across all segments force
  // LRU eviction and transparent remaps, never a wrong or lost record.
  (*store)->set_byte_budget(8192);
  for (size_t i = 0; i < coalitions.size(); ++i) {
    UtilityRecord read;
    ASSERT_TRUE((*store)->Lookup(coalitions[i], &read)) << "entry " << i;
    EXPECT_DOUBLE_EQ(read.utility, static_cast<double>(i));
  }
  UtilityStoreStats stats = (*store)->stats();
  EXPECT_LE(stats.mapped_bytes, 8192u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.byte_budget, 8192u);
}

TEST(UtilityStoreTest, EvictionNeverDropsUnflushedRecords) {
  const std::string path = TempPath("unflushed.fsus");
  Result<std::unique_ptr<UtilityStore>> store =
      UtilityStore::Open(path, 19);
  ASSERT_TRUE(store.ok());
  // A budget below any segment size: nothing sealed may stay mapped.
  (*store)->set_byte_budget(1);
  for (int i = 0; i < 5; ++i) {
    (*store)->Put(Coalition::Of({i}), {static_cast<double>(i), 0.0});
  }
  // The records are dirty (never flushed) yet must all be served from
  // the in-memory active set — eviction only unmaps sealed segments.
  EXPECT_TRUE((*store)->dirty());
  for (int i = 0; i < 5; ++i) {
    UtilityRecord read;
    ASSERT_TRUE((*store)->Lookup(Coalition::Of({i}), &read));
    EXPECT_DOUBLE_EQ(read.utility, static_cast<double>(i));
  }
}

TEST(UtilityStoreTest, StemPathEncodesFingerprint) {
  EXPECT_EQ(UtilityStore::StemPath("/tmp/x", 0xabcULL),
            "/tmp/x.0000000000000abc.fsus");
  EXPECT_NE(UtilityStore::StemPath("/tmp/x", 1),
            UtilityStore::StemPath("/tmp/x", 2));
}

TEST(UtilityCacheStoreTest, WriteThroughAndCrossProcessReuse) {
  const std::string path = TempPath("integration.fsus");
  CountingUtility fn(6);
  const uint64_t fingerprint = fn.Fingerprint();

  // "Process 1": computes five utilities, each flushed as it lands
  // (flush_bytes=1 makes every appended byte trip the interval).
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    UtilityCache cache(&fn);
    cache.AttachStore(store->get(), /*flush_bytes=*/1);
    UtilitySession session(&cache);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(session.Evaluate(Coalition::Of({i})).ok());
    }
    EXPECT_EQ(fn.calls(), 5);
    EXPECT_FALSE((*store)->dirty());  // flush_bytes=1 persisted everything
  }

  // "Process 2": a fresh cache reads through to the store on miss;
  // repeated coalitions cost no new trainings and are charged their
  // recorded costs.
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->loaded_entries(), 5u);
    UtilityCache cache(&fn);
    cache.AttachStore(store->get());
    // Read-through is lazy: nothing enters the cache until asked for.
    EXPECT_EQ(cache.preloaded(), 0u);
    EXPECT_EQ(cache.size(), 0u);
    UtilitySession session(&cache);
    for (int i = 0; i < 5; ++i) {
      Result<double> u = session.Evaluate(Coalition::Of({i}));
      ASSERT_TRUE(u.ok());
      EXPECT_DOUBLE_EQ(*u, 0.125);
    }
    EXPECT_EQ(fn.calls(), 5);  // no re-training across "processes"
    EXPECT_EQ(cache.hits(), 5u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.preloaded(), 5u);
    EXPECT_EQ(cache.size(), 5u);
    // A genuinely new coalition still computes and persists.
    ASSERT_TRUE(session.Evaluate(Coalition::Of({0, 1})).ok());
    EXPECT_EQ(fn.calls(), 6);
    ASSERT_TRUE((*store)->Flush().ok());
  }
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->loaded_entries(), 6u);
  }
}

TEST(UtilityFingerprintTest, DistinguishesWorkloads) {
  LinearRegressionUtility::Params params;
  LinearRegressionUtility a(params);
  LinearRegressionUtility same(params);
  params.samples_per_client += 1;
  LinearRegressionUtility different(params);
  EXPECT_EQ(a.Fingerprint(), same.Fingerprint());
  EXPECT_NE(a.Fingerprint(), different.Fingerprint());

  TableUtility table_a = testing_util::PaperTableOne();
  TableUtility table_b = testing_util::RandomTable(3, 1);
  EXPECT_NE(table_a.Fingerprint(), table_b.Fingerprint());
  EXPECT_EQ(table_a.Fingerprint(),
            testing_util::PaperTableOne().Fingerprint());
}

}  // namespace
}  // namespace fedshap
